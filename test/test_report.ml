(* The performance-trajectory layer: the wx-bench/4 schema (and its
   v3/v2/v1 ancestors) round-trips through Wx_obs.Json, bench-diff
   wall-time, allocation and throughput verdicts on synthetic report
   pairs, and the catapult traces Trace_export emits are well-formed
   (every event carries ph/ts/pid/tid, one track per pool worker). *)

module Json = Wx_obs.Json
module Report = Wx_obs.Report
module Memgc = Wx_obs.Memgc
module Trace = Wx_obs.Trace_export
open Common

(* A plausible alloc block: [minor_words w] scales the rest off the minor
   count so synthetic reports stay internally consistent. *)
let minor_words w =
  {
    Memgc.zero with
    Memgc.minor_words = w;
    promoted_words = w / 10;
    major_words = w / 8;
    minor_collections = 1 + (w / 100_000);
    top_heap_words = 4096;
  }

let entry ?(holds = 1) ?(total = 1) ?alloc ?(work = []) ?util id wall_s =
  {
    Report.id;
    title = "title of " ^ id;
    claim = "claim of " ^ id;
    wall_s;
    alloc;
    work;
    util;
    holds;
    total;
    checks = Json.List [ Json.Obj [ ("claim", Json.String id); ("holds", Json.Bool true) ] ];
    metrics = Json.Null;
  }

(* A plausible two-slot utilization block for round-trip tests. *)
let some_util =
  {
    Report.ut_runs = 4;
    ut_seq_runs = 1;
    ut_busy_frac = 0.82;
    ut_idle_tail_ms = 3.5;
    ut_max_idle_tail_ms = 9.25;
    ut_slots =
      [
        { Report.us_busy_frac = 0.9; us_chunks = 17 };
        { Report.us_busy_frac = 0.74; us_chunks = 15 };
      ];
  }

let report ?(quick = true) ?(jobs = 2) ?(repeats = 3) entries =
  Report.make ~provenance:[ ("git_commit", "deadbeef"); ("hostname", "testhost") ] ~seed:20180218
    ~quick ~jobs ~repeats entries

(* ---- schema ---- *)

let test_median () =
  check_true "empty is nan" (Float.is_nan (Report.median []));
  check_float "odd" 2.0 (Report.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Report.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "min" 1.0 (Report.min_sample [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Report.max_sample [ 3.0; 1.0; 2.0 ])

let test_round_trip () =
  let r =
    report
      [
        entry ~alloc:(minor_words 650_489)
          ~work:[ ("gray_steps", 120_000); ("sets_scored", 4_500) ]
          ~util:some_util "e1" [ 1.0; 1.2; 0.9 ];
        (* Entry with neither alloc nor work/util: Memgc and Metrics off. *)
        entry ~holds:5 ~total:7 "e2" [ 0.25 ];
      ]
  in
  (* Through the renderer and parser, exactly as `wx bench record` writes
     and `wx bench diff` reads. *)
  let decoded =
    match Json.of_string (Json.to_string_pretty (Report.to_json r)) with
    | j -> ( match Report.of_json j with Ok d -> d | Error m -> Alcotest.failf "decode: %s" m)
    | exception Json.Parse_error m -> Alcotest.failf "parse: %s" m
  in
  check_true "round trip preserves everything" (decoded = r);
  (* Spot-check the schema marker actually written. *)
  match Json.member "schema" (Report.to_json r) with
  | Some (Json.String s) -> check_true "schema is wx-bench/4" (s = Report.schema)
  | _ -> Alcotest.fail "no schema field"

let test_v3_compat () =
  (* A wx-bench/3 document is a v4 document with no work/util blocks (and
     no derived rate series); decoding must succeed with [work = []] and
     [util = None] everywhere. *)
  let v3 =
    match Report.to_json (report [ entry ~alloc:(minor_words 1_000) "e1" [ 1.0; 1.1 ] ]) with
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (function "schema", _ -> ("schema", Json.String "wx-bench/3") | kv -> kv)
             kvs)
    | _ -> assert false
  in
  match Report.of_json v3 with
  | Error m -> Alcotest.failf "v3 rejected: %s" m
  | Ok r ->
      check_true "v3 entries decode with work = [] and util = None"
        (List.for_all
           (fun (e : Report.entry) -> e.Report.work = [] && e.Report.util = None)
           r.Report.entries);
      check_true "v3 keeps its alloc blocks"
        (List.for_all (fun (e : Report.entry) -> e.Report.alloc <> None) r.Report.entries)

let test_v2_compat () =
  (* A wx-bench/2 document is exactly a v3 document with no alloc blocks;
     decoding must succeed and leave [alloc = None] everywhere. *)
  let v2 =
    match Report.to_json (report [ entry "e1" [ 1.0; 1.1 ] ]) with
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (function "schema", _ -> ("schema", Json.String "wx-bench/2") | kv -> kv)
             kvs)
    | _ -> assert false
  in
  match Report.of_json v2 with
  | Error m -> Alcotest.failf "v2 rejected: %s" m
  | Ok r ->
      check_true "v2 entries decode with alloc = None"
        (List.for_all (fun (e : Report.entry) -> e.Report.alloc = None) r.Report.entries)

let test_v1_compat () =
  (* A minimal wx-bench/1 document, as PR 1's harness wrote it: scalar
     wall_s, no repeats, no provenance. *)
  let v1 =
    Json.Obj
      [
        ("schema", Json.String "wx-bench/1");
        ("generated", Json.String "20260101T000000Z");
        ("seed", Json.Int 20180218);
        ("quick", Json.Bool false);
        ("jobs", Json.Int 4);
        ( "experiments",
          Json.List
            [
              Json.Obj
                [
                  ("id", Json.String "e1");
                  ("title", Json.String "t");
                  ("claim", Json.String "c");
                  ("wall_s", Json.Float 1.5);
                  ("holds", Json.Int 3);
                  ("total", Json.Int 3);
                ];
            ] );
      ]
  in
  match Report.of_json v1 with
  | Error m -> Alcotest.failf "v1 rejected: %s" m
  | Ok r ->
      check_int "v1 repeats default to 1" 1 r.Report.repeats;
      (match r.Report.entries with
      | [ e ] -> check_true "scalar wall_s becomes one sample" (e.Report.wall_s = [ 1.5 ])
      | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

let test_malformed () =
  let reject name j =
    match Report.of_json j with
    | Ok _ -> Alcotest.failf "%s: accepted malformed report" name
    | Error m -> check_true (name ^ " names the problem") (String.length m > 0)
  in
  reject "not a report" (Json.Obj [ ("hello", Json.Int 1) ]);
  reject "unknown schema" (Json.Obj [ ("schema", Json.String "wx-bench/9") ]);
  let base =
    Report.to_json (report [ entry "e1" [ 1.0 ] ])
  in
  (* Surgical corruption: empty the sample list. *)
  let corrupted =
    match base with
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (function
               | "experiments", Json.List [ Json.Obj ekvs ] ->
                   ( "experiments",
                     Json.List
                       [
                         Json.Obj
                           (List.map
                              (function
                                | "wall_s", _ -> ("wall_s", Json.List [])
                                | kv -> kv)
                              ekvs);
                       ] )
               | kv -> kv)
             kvs)
    | _ -> assert false
  in
  reject "empty wall_s" corrupted;
  (match Report.load "/nonexistent/definitely-not-here.json" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ())

(* ---- diff verdicts ---- *)

let verdict_of deltas id =
  match List.find_opt (fun d -> d.Report.d_id = id) deltas with
  | Some d -> d.Report.verdict
  | None -> Alcotest.failf "no delta for %s" id

let test_diff_verdicts () =
  let old_ =
    report
      [
        entry "reg" [ 1.0; 1.05; 0.95 ];
        entry "overlap" [ 1.0; 1.05; 0.95 ];
        entry "small" [ 1.0; 1.05; 0.95 ];
        entry "imp" [ 1.0; 1.05; 0.95 ];
        entry "tiny" [ 0.010; 0.012; 0.011 ];
        entry "gone" [ 1.0 ];
      ]
  in
  let new_ =
    report
      [
        (* Median +45% and the ranges are disjoint: a real regression. *)
        entry "reg" [ 1.45; 1.40; 1.50 ];
        (* Median +30% but one sample dips into the old range: noise. *)
        entry "overlap" [ 1.30; 1.50; 1.02 ];
        (* Median +10%: under the 25% tolerance, noise. *)
        entry "small" [ 1.10; 1.12; 1.08 ];
        (* Median -50%, ranges disjoint: improvement. *)
        entry "imp" [ 0.50; 0.55; 0.45 ];
        (* 4x slower but both medians under the 50ms floor: noise. *)
        entry "tiny" [ 0.040; 0.042; 0.041 ];
        entry "fresh" [ 1.0 ];
      ]
  in
  let deltas = Report.diff ~old_ ~new_ () in
  check_true "regression" (verdict_of deltas "reg" = Report.Regression);
  check_true "overlapping spread is noise" (verdict_of deltas "overlap" = Report.Within_noise);
  check_true "small change is noise" (verdict_of deltas "small" = Report.Within_noise);
  check_true "improvement" (verdict_of deltas "imp" = Report.Improvement);
  check_true "under floor is noise" (verdict_of deltas "tiny" = Report.Within_noise);
  check_true "removed" (verdict_of deltas "gone" = Report.Removed);
  check_true "added" (verdict_of deltas "fresh" = Report.Added);
  check_int "one regression total" 1 (List.length (Report.regressions deltas));
  (* Same report on both sides: everything within noise. *)
  let self = Report.diff ~old_ ~new_:old_ () in
  check_true "self diff is clean"
    (List.for_all (fun d -> d.Report.verdict = Report.Within_noise) self)

let test_diff_tolerance_and_warnings () =
  let old_ = report [ entry "e" [ 1.0; 1.0; 1.0 ] ] in
  let new_ = report [ entry "e" [ 1.2; 1.2; 1.2 ] ] in
  (* +20%: noise at the default 25% tolerance, regression at 10%. *)
  check_true "default tolerates 20%"
    ((List.hd (Report.diff ~old_ ~new_ ())).Report.verdict = Report.Within_noise);
  check_true "tight tolerance flags 20%"
    ((List.hd (Report.diff ~tolerance:0.10 ~old_ ~new_ ())).Report.verdict = Report.Regression);
  check_true "same config, no warnings" (Report.compat_warnings ~old_ ~new_ = []);
  let other = report ~quick:false ~jobs:8 [ entry "e" [ 1.0 ] ] in
  check_int "quick+jobs mismatches warned" 2
    (List.length (Report.compat_warnings ~old_ ~new_:other))

(* ---- allocation verdicts ---- *)

let alloc_verdict_of deltas id =
  match List.find_opt (fun d -> d.Report.d_id = id) deltas with
  | Some d -> d.Report.alloc_verdict
  | None -> Alcotest.failf "no delta for %s" id

let test_alloc_verdicts () =
  let old_ =
    report
      [
        entry ~alloc:(minor_words 1_000_000) "reg" [ 1.0 ];
        entry ~alloc:(minor_words 1_000_000) "drift" [ 1.0 ];
        entry ~alloc:(minor_words 1_000_000) "imp" [ 1.0 ];
        entry ~alloc:(minor_words 1_000_000) "same" [ 1.0 ];
      ]
  in
  let new_ =
    report
      [
        (* +2% minor words: over the 1% tolerance — a regression, even
           though wall time is identical (determinism needs no floor). *)
        entry ~alloc:(minor_words 1_020_000) "reg" [ 1.0 ];
        (* +0.5%: inside the tolerance. *)
        entry ~alloc:(minor_words 1_005_000) "drift" [ 1.0 ];
        (* -2%: an improvement. *)
        entry ~alloc:(minor_words 980_000) "imp" [ 1.0 ];
        entry ~alloc:(minor_words 1_000_000) "same" [ 1.0 ];
      ]
  in
  let deltas = Report.diff ~old_ ~new_ () in
  check_true "+2% minor words regresses" (alloc_verdict_of deltas "reg" = Some Report.Regression);
  check_true "+0.5% is within tolerance"
    (alloc_verdict_of deltas "drift" = Some Report.Within_noise);
  check_true "-2% improves" (alloc_verdict_of deltas "imp" = Some Report.Improvement);
  check_true "identical counts are clean"
    (alloc_verdict_of deltas "same" = Some Report.Within_noise);
  check_int "one alloc regression total" 1 (List.length (Report.alloc_regressions deltas));
  check_true "nothing skipped when both sides carry blocks"
    (not (Report.alloc_skipped deltas));
  (* Wall verdicts are independent: identical wall samples stay clean. *)
  check_true "no wall regressions" (Report.regressions deltas = []);
  (* A wider tolerance swallows the +2%. *)
  let lax = Report.diff ~alloc_tolerance:0.05 ~old_ ~new_ () in
  check_true "+2% is noise at 5% tolerance"
    (alloc_verdict_of lax "reg" = Some Report.Within_noise)

let test_alloc_mixed_versions () =
  (* v2 baseline (no alloc blocks) vs v3 report: the alloc verdict is
     skipped per entry, flagged via [alloc_skipped], and the wall verdict
     still computes normally. *)
  let old_ = report [ entry "e" [ 1.0; 1.0; 1.0 ] ] in
  let new_ = report [ entry ~alloc:(minor_words 500_000) "e" [ 2.0; 2.1; 1.9 ] ] in
  let deltas = Report.diff ~old_ ~new_ () in
  check_true "alloc verdict skipped" (alloc_verdict_of deltas "e" = None);
  check_true "skip is flagged" (Report.alloc_skipped deltas);
  check_true "wall verdict still computed" (verdict_of deltas "e" = Report.Regression);
  (* The one-sided minor-word count still surfaces for the table. *)
  (match deltas with
  | [ d ] ->
      check_true "old words unknown" (Float.is_nan d.Report.old_minor_words);
      check_float "new words shown" 500_000.0 d.Report.new_minor_words
  | _ -> Alcotest.fail "expected one delta");
  (* Added/removed entries never get an alloc verdict. *)
  let grown =
    report
      [ entry ~alloc:(minor_words 1) "e" [ 1.0 ]; entry ~alloc:(minor_words 1) "fresh" [ 1.0 ] ]
  in
  let deltas = Report.diff ~old_:(report [ entry ~alloc:(minor_words 1) "e" [ 1.0 ] ]) ~new_:grown () in
  check_true "added entry has no alloc verdict" (alloc_verdict_of deltas "fresh" = None);
  check_true "added/removed do not count as skipped" (not (Report.alloc_skipped deltas))

(* ---- throughput (rate) verdicts ---- *)

let rate_verdict_of deltas id =
  match List.find_opt (fun d -> d.Report.d_id = id) deltas with
  | Some d -> d.Report.rate_verdict
  | None -> Alcotest.failf "no delta for %s" id

let test_rate_verdicts () =
  (* Rates are derived per sample: units / wall_s. Equal work with slower
     walls means a lower rate, so the wall and rate verdicts usually agree
     — the interesting rows are the ones where they diverge because the
     work count itself moved. *)
  let w = [ ("gray_steps", 1_000_000) ] in
  let old_ =
    report
      [
        (* Work halves at identical wall: only the rate gate can see it. *)
        entry ~work:[ ("gray_steps", 2_000_000) ] "less_work" [ 1.0; 1.05; 0.95 ];
        (* Wall +45% with equal work: both gates fire. *)
        entry ~work:w "reg" [ 1.0; 1.05; 0.95 ];
        (* Rate dips 30% but sample ranges overlap: noise. *)
        entry ~work:w "overlap" [ 1.0; 1.05; 0.95 ];
        (* Work doubles at identical wall: a rate improvement. *)
        entry ~work:w "imp" [ 1.0; 1.05; 0.95 ];
        (* Everything under the 50ms wall floor: never a rate verdict firing. *)
        entry ~work:w "tiny" [ 0.010; 0.012; 0.011 ];
        (* No work on either side: verdict skipped, not Within_noise. *)
        entry "nowork" [ 1.0 ];
      ]
  in
  let new_ =
    report
      [
        entry ~work:w "less_work" [ 1.0; 1.05; 0.95 ];
        entry ~work:w "reg" [ 1.45; 1.40; 1.50 ];
        entry ~work:w "overlap" [ 1.30; 1.50; 1.02 ];
        entry ~work:[ ("gray_steps", 2_000_000) ] "imp" [ 1.0; 1.05; 0.95 ];
        entry ~work:w "tiny" [ 0.040; 0.042; 0.041 ];
        entry "nowork" [ 1.0 ];
      ]
  in
  let deltas = Report.diff ~old_ ~new_ () in
  check_true "halved work at equal wall regresses"
    (rate_verdict_of deltas "less_work" = Some Report.Regression);
  check_true "the wall gate cannot see it" (verdict_of deltas "less_work" = Report.Within_noise);
  check_true "slower wall at equal work regresses"
    (rate_verdict_of deltas "reg" = Some Report.Regression);
  check_true "overlapping rate ranges are noise"
    (rate_verdict_of deltas "overlap" = Some Report.Within_noise);
  check_true "doubled work improves" (rate_verdict_of deltas "imp" = Some Report.Improvement);
  check_true "under the wall floor is noise"
    (rate_verdict_of deltas "tiny" = Some Report.Within_noise);
  check_true "no shared kinds skips the verdict" (rate_verdict_of deltas "nowork" = None);
  (* Work-less on BOTH sides is not a skip: nothing was lost, so an
     all-v4 diff over such entries stays warning-free. *)
  check_true "both-sides-empty is not flagged" (not (Report.rate_skipped deltas));
  check_int "two rate regressions total" 2 (List.length (Report.rate_regressions deltas));
  (* The note names the deciding kind. *)
  (match List.find_opt (fun d -> d.Report.d_id = "less_work") deltas with
  | Some d ->
      check_true "note names the kind"
        (String.length d.Report.rate_note >= String.length "gray_steps"
        && String.sub d.Report.rate_note 0 (String.length "gray_steps") = "gray_steps")
  | None -> Alcotest.fail "no delta for less_work");
  (* A lax tolerance swallows the halving. *)
  let lax = Report.diff ~rate_tolerance:1.5 ~old_ ~new_ () in
  check_true "2x drop is noise at 150% tolerance"
    (rate_verdict_of lax "less_work" = Some Report.Within_noise);
  (* Self-diff: every computed rate verdict is clean. *)
  let self = Report.diff ~old_ ~new_:old_ () in
  check_true "self diff has no rate regressions" (Report.rate_regressions self = [])

let test_rate_worst_kind_wins () =
  (* Two kinds, one steady and one collapsing: the collapsing kind decides. *)
  let old_ = report [ entry ~work:[ ("a", 1000); ("b", 1000) ] "e" [ 1.0; 1.0; 1.0 ] ] in
  let new_ = report [ entry ~work:[ ("a", 1000); ("b", 100) ] "e" [ 1.0; 1.0; 1.0 ] ] in
  let deltas = Report.diff ~old_ ~new_ () in
  check_true "worst kind decides" (rate_verdict_of deltas "e" = Some Report.Regression);
  (match deltas with
  | [ d ] -> check_true "note names the collapsing kind" (d.Report.rate_note <> "" && String.sub d.Report.rate_note 0 1 = "b")
  | _ -> Alcotest.fail "expected one delta");
  (* Kinds present on only one side are ignored (no common basis). *)
  let old_ = report [ entry ~work:[ ("a", 1000) ] "e" [ 1.0 ] ] in
  let new_ = report [ entry ~work:[ ("b", 1000) ] "e" [ 1.0 ] ] in
  let deltas = Report.diff ~old_ ~new_ () in
  check_true "disjoint kind sets skip" (rate_verdict_of deltas "e" = None);
  check_true "disjoint kind sets are a flagged skip" (Report.rate_skipped deltas)

let test_rate_mixed_versions () =
  (* v3-shaped old (no work) vs v4 new: rate skipped, wall still gates,
     and added/removed entries never produce a rate verdict. *)
  let old_ = report [ entry "e" [ 1.0; 1.0; 1.0 ] ] in
  let new_ = report [ entry ~work:[ ("sets_scored", 10) ] "e" [ 2.0; 2.1; 1.9 ] ] in
  let deltas = Report.diff ~old_ ~new_ () in
  check_true "rate verdict skipped" (rate_verdict_of deltas "e" = None);
  check_true "skip is flagged" (Report.rate_skipped deltas);
  check_true "wall verdict still computed" (verdict_of deltas "e" = Report.Regression);
  let grown =
    report [ entry ~work:[ ("a", 1) ] "e" [ 1.0 ]; entry ~work:[ ("a", 1) ] "fresh" [ 1.0 ] ]
  in
  let deltas =
    Report.diff ~old_:(report [ entry ~work:[ ("a", 1) ] "e" [ 1.0 ] ]) ~new_:grown ()
  in
  check_true "added entry has no rate verdict" (rate_verdict_of deltas "fresh" = None);
  check_true "added/removed do not count as skipped" (not (Report.rate_skipped deltas))

(* ---- catapult traces ---- *)

let with_trace f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

let test_catapult_well_formed () =
  with_trace (fun () ->
      (* Real pool run on two domains so worker tracks exist. *)
      let sum =
        Wx_par.Pool.parallel_reduce ~jobs:2 ~n:64 ~init:0
          ~map:(fun i ->
            ignore (Sys.opaque_identity (List.init 100 Fun.id));
            i)
          ~combine:( + ) ()
      in
      check_int "reduce still correct under tracing" (64 * 63 / 2) sum;
      let doc = Trace.to_json () in
      let events =
        match Json.member "traceEvents" doc with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents list"
      in
      check_true "trace has events" (List.length events > 0);
      (* The acceptance bar: every event carries ph/ts/pid/tid. *)
      List.iter
        (fun ev ->
          List.iter
            (fun k ->
              if Json.member k ev = None then
                Alcotest.failf "event missing %s: %s" k (Json.to_string ev))
            [ "ph"; "ts"; "pid"; "tid" ])
        events;
      let complete =
        List.filter (fun ev -> Json.member "ph" ev = Some (Json.String "X")) events
      in
      let tids =
        List.sort_uniq compare
          (List.filter_map (fun ev -> Option.bind (Json.member "tid" ev) Json.to_int_opt) complete)
      in
      check_true "caller track present" (List.mem 0 tids);
      check_true "one track per worker domain" (List.mem 1 tids);
      let names =
        List.filter_map (fun ev -> Option.bind (Json.member "name" ev) Json.to_string_opt) complete
      in
      check_true "chunk slices present" (List.mem "chunk" names);
      check_true "reduce envelope present" (List.mem "parallel_reduce" names);
      (* Thread-name metadata names both tracks. *)
      let metas =
        List.filter (fun ev -> Json.member "ph" ev = Some (Json.String "M")) events
      in
      check_true "thread_name metadata present"
        (List.exists (fun ev -> Json.member "name" ev = Some (Json.String "thread_name")) metas);
      (* Durations are non-negative and ts is sane. *)
      List.iter
        (fun ev ->
          match Json.member "dur" ev with
          | Some d -> check_true "dur >= 0" (Option.get (Json.to_float_opt d) >= 0.0)
          | None -> ())
        complete)

let test_trace_disabled_records_nothing () =
  Trace.reset ();
  Trace.disable ();
  Trace.slice ~tid:0 ~name:"dropped" ~t0_ns:0 ~dur_ns:10 ();
  let doc = Trace.to_json () in
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
      check_true "only metadata while disabled"
        (List.for_all (fun ev -> Json.member "ph" ev = Some (Json.String "M")) evs)
  | _ -> Alcotest.fail "no traceEvents list"

let suite =
  [
    Alcotest.test_case "median / spread helpers" `Quick test_median;
    Alcotest.test_case "wx-bench/4 round trip" `Quick test_round_trip;
    Alcotest.test_case "wx-bench/3 compatibility" `Quick test_v3_compat;
    Alcotest.test_case "wx-bench/2 compatibility" `Quick test_v2_compat;
    Alcotest.test_case "wx-bench/1 compatibility" `Quick test_v1_compat;
    Alcotest.test_case "malformed reports rejected" `Quick test_malformed;
    Alcotest.test_case "diff verdicts on synthetic pairs" `Quick test_diff_verdicts;
    Alcotest.test_case "diff tolerance + compat warnings" `Quick test_diff_tolerance_and_warnings;
    Alcotest.test_case "alloc verdicts on synthetic pairs" `Quick test_alloc_verdicts;
    Alcotest.test_case "alloc verdict across schema versions" `Quick test_alloc_mixed_versions;
    Alcotest.test_case "rate verdicts on synthetic pairs" `Quick test_rate_verdicts;
    Alcotest.test_case "rate verdict: worst kind wins" `Quick test_rate_worst_kind_wins;
    Alcotest.test_case "rate verdict across schema versions" `Quick test_rate_mixed_versions;
    Alcotest.test_case "catapult trace well-formed" `Quick test_catapult_well_formed;
    Alcotest.test_case "trace disabled records nothing" `Quick test_trace_disabled_records_nothing;
  ]
