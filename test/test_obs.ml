(* The wx_obs observability layer: metrics semantics on/off, span nesting,
   JSON round-trips, and NDJSON well-formedness through our own parser. *)

module Json = Wx_obs.Json
module Metrics = Wx_obs.Metrics
module Span = Wx_obs.Span
module Sink = Wx_obs.Sink
open Common

(* Each test starts from a clean, enabled registry and leaves the registry
   disabled so the rest of the suite keeps its zero-cost default. *)
let with_metrics f =
  Metrics.enable ();
  Metrics.reset ();
  Span.reset ();
  Fun.protect ~finally:(fun () ->
      Metrics.reset ();
      Span.reset ();
      Metrics.disable ())
    f

let counter_value name snap =
  match Json.member "counters" snap with
  | Some cs -> ( match Json.member name cs with Some j -> Json.to_int_opt j | None -> None)
  | None -> None

let test_counter_semantics () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.obs.counter" in
      Metrics.incr c;
      Metrics.incr c;
      Metrics.add c 5;
      check_int "enabled counts" 7
        (Option.value ~default:(-1) (counter_value "test.obs.counter" (Metrics.snapshot ())));
      (* Same name interns to the same instrument. *)
      Metrics.incr (Metrics.counter "test.obs.counter");
      check_int "interned" 8
        (Option.value ~default:(-1) (counter_value "test.obs.counter" (Metrics.snapshot ())));
      (* Disabled: operations are dropped, not queued. *)
      Metrics.disable ();
      Metrics.incr c;
      Metrics.add c 100;
      Metrics.enable ();
      check_int "disabled drops" 8
        (Option.value ~default:(-1) (counter_value "test.obs.counter" (Metrics.snapshot ())));
      (* Reset zeroes and the zeroed counter leaves the snapshot. *)
      Metrics.reset ();
      check_true "reset clears"
        (counter_value "test.obs.counter" (Metrics.snapshot ()) = None))

let test_histogram_and_quantiles () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.obs.hist" in
      List.iter (fun v -> Metrics.observe h v) [ 1.0; 2.0; 4.0; 8.0; 1024.0 ];
      let snap = Metrics.snapshot () in
      let hj =
        match Json.member "histograms" snap with
        | Some hs -> Option.get (Json.member "test.obs.hist" hs)
        | None -> Alcotest.fail "no histograms section"
      in
      let fget k = Option.get (Json.to_float_opt (Option.get (Json.member k hj))) in
      check_int "count" 5 (Option.get (Json.to_int_opt (Option.get (Json.member "count" hj))));
      check_float "sum" 1039.0 (fget "sum");
      check_float "min" 1.0 (fget "min");
      check_float "max" 1024.0 (fget "max");
      (* Quantiles are bucket estimates: p50 must sit within the observed
         range and below the top bucket; p99 lands in the 1024 bucket. *)
      let p50 = Metrics.quantile h 0.50 and p99 = Metrics.quantile h 0.99 in
      check_true "p50 in range" (p50 >= 1.0 && p50 <= 8.0);
      check_true "p99 near max" (p99 >= 512.0 && p99 <= 1024.0);
      check_true "empty quantile is nan"
        (Float.is_nan (Metrics.quantile (Metrics.histogram "test.obs.empty") 0.5)))

let test_timer_semantics () =
  with_metrics (fun () ->
      let t = Metrics.timer "test.obs.work" in
      let r = Metrics.time t (fun () -> Sys.opaque_identity (List.init 100 Fun.id)) in
      check_int "result passes through" 100 (List.length r);
      (* Manual start/stop pairs accumulate into the same histogram. *)
      let stamp = Metrics.start () in
      check_true "stamp is live" (stamp > 0);
      Metrics.stop t stamp;
      let snap = Metrics.snapshot () in
      let tj =
        match Json.member "timers" snap with
        | Some ts -> Option.get (Json.member "test.obs.work" ts)
        | None -> Alcotest.fail "no timers section"
      in
      check_int "two samples" 2 (Option.get (Json.to_int_opt (Option.get (Json.member "count" tj))));
      check_true "total_ms present" (Json.member "total_ms" tj <> None);
      (* Disabled: start returns the 0 sentinel and stop on it is a no-op. *)
      Metrics.disable ();
      check_int "disabled stamp" 0 (Metrics.start ());
      Metrics.stop t 0;
      Metrics.enable ();
      let snap2 = Metrics.snapshot () in
      let tj2 =
        Option.get (Json.member "test.obs.work" (Option.get (Json.member "timers" snap2)))
      in
      check_int "still two" 2 (Option.get (Json.to_int_opt (Option.get (Json.member "count" tj2)))))

let test_span_nesting () =
  with_metrics (fun () ->
      let burn () = ignore (Sys.opaque_identity (List.init 1000 Fun.id)) in
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner" burn;
          (* Re-entry under the same parent accumulates into one node. *)
          Span.with_ ~name:"inner" burn;
          burn ());
      match Span.root_spans () with
      | [ root ] ->
          check_true "root name" (root.Span.name = "outer");
          check_int "root calls" 1 root.Span.calls;
          (match Span.children root with
          | [ inner ] ->
              check_true "inner name" (inner.Span.name = "inner");
              check_int "inner accumulates calls" 2 inner.Span.calls;
              check_true "child within parent" (inner.Span.dur_ns <= root.Span.dur_ns);
              check_true "self+rollup = total"
                (Span.self_ns root + Span.rollup_ns root = root.Span.dur_ns)
          | l -> Alcotest.failf "expected 1 child, got %d" (List.length l))
      | l -> Alcotest.failf "expected 1 root, got %d" (List.length l))

let test_span_exception_safety () =
  with_metrics (fun () ->
      (try Span.with_ ~name:"boom" (fun () -> failwith "boom") with Failure _ -> ());
      (* The span stack must have unwound: a new root is a sibling, not a
         child of the failed span. *)
      Span.with_ ~name:"after" (fun () -> ());
      let names = List.map (fun s -> s.Span.name) (Span.root_spans ()) in
      check_true "both are roots" (List.mem "boom" names && List.mem "after" names))

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "hi \"there\"\n\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("b", Json.Bool true);
        ("nothing", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | parsed ->
      check_true "round trip" (parsed = doc);
      check_true "pretty round trip" (Json.of_string (Json.to_string_pretty doc) = doc);
      check_true "nan renders as null" (Json.to_string (Json.Float Float.nan) = "null");
      check_true "rejects garbage" (Json.of_string_opt "{\"a\":" = None);
      check_true "rejects trailing" (Json.of_string_opt "1 2" = None)
  | exception Json.Parse_error m -> Alcotest.failf "round trip failed to parse: %s" m

let test_sink_ndjson_well_formed () =
  let path = Filename.temp_file "wx_obs_test" ".ndjson" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Sink.make oc in
      Sink.with_sink sink (fun () ->
          check_true "active inside" (Sink.active ());
          Sink.event "alpha" [ ("x", Json.Int 1); ("note", Json.String "a \"quoted\" λ") ];
          Sink.event "beta" [ ("holds", Json.Bool false); ("v", Json.Float 0.5) ];
          Sink.event "gamma" []);
      check_true "inactive outside" (not (Sink.active ()));
      Sink.event "dropped" [ ("x", Json.Int 9) ];
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "one line per event" 3 (List.length lines);
      let parsed =
        List.map
          (fun l ->
            match Json.of_string l with
            | j -> j
            | exception Json.Parse_error m -> Alcotest.failf "bad NDJSON line %S: %s" l m)
          lines
      in
      let names =
        List.map
          (fun j -> Option.get (Json.to_string_opt (Option.get (Json.member "event" j))))
          parsed
      in
      check_true "event names in order" (names = [ "alpha"; "beta"; "gamma" ]);
      let alpha = List.hd parsed in
      check_int "fields survive" 1
        (Option.get (Json.to_int_opt (Option.get (Json.member "x" alpha)))))

let test_nan_renders_as_dash () =
  with_metrics (fun () ->
      let g = Metrics.gauge "test.obs.hole" in
      Metrics.set g Float.nan;
      (* An empty histogram's quantiles are NaN too; make one visible. *)
      let h = Metrics.histogram "test.obs.lonely" in
      Metrics.observe h Float.nan;
      let out = Metrics.render () in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check_true "gauge line present" (contains "test.obs.hole" out);
      check_true "no literal nan in render"
        (not (contains "nan" (String.lowercase_ascii out))))

let test_sink_flush_installed () =
  let path = Filename.temp_file "wx_obs_flush" ".ndjson" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Sink.make oc in
      Sink.install sink;
      Fun.protect ~finally:Sink.uninstall (fun () ->
          Sink.event "one" [ ("x", Json.Int 1) ];
          Sink.event "two" [ ("x", Json.Int 2) ];
          (* Under the batch threshold, so the channel may still hold the
             lines; flush_installed is the interrupted-run path. *)
          Sink.flush_installed ();
          let ic = open_in path in
          let n = ref 0 in
          (try
             while true do
               ignore (input_line ic);
               incr n
             done
           with End_of_file -> close_in ic);
          check_int "flush_installed drains the batch" 2 !n;
          (* A second flush on the same sink is harmless. *)
          Sink.flush_installed ());
      close_out oc;
      (* And flushing with no sink installed is a no-op, not an error. *)
      Sink.flush_installed ())

(* The tentpole cross-check: Trace.stalled_rounds must agree with the
   per-round records the simulator now produces, and the process-wide
   collision counter must equal the trace's own tally, on the C⁺ flooding
   stall where rounds transmit without informing anyone. *)
let test_trace_agrees_with_metrics () =
  with_metrics (fun () ->
      let g = Wx_constructions.Cplus.create 10 in
      let t =
        Wx_radio.Trace.run ~max_rounds:50 g ~source:(Wx_constructions.Cplus.source g)
          Wx_radio.Flood.protocol (rng ~salt:870 ())
      in
      let from_rounds =
        List.length
          (List.filter
             (fun r -> r.Wx_radio.Trace.transmitters > 0 && r.Wx_radio.Trace.newly_informed = 0)
             t.Wx_radio.Trace.rounds)
      in
      check_int "stalled_rounds = per-round recount" from_rounds
        (Wx_radio.Trace.stalled_rounds t);
      check_true "the stall is real" (from_rounds >= 45);
      let snap = Metrics.snapshot () in
      let trace_collisions =
        List.fold_left
          (fun acc r -> acc + r.Wx_radio.Trace.collisions_this_round)
          0 t.Wx_radio.Trace.rounds
      in
      check_int "radio.collisions counter = trace tally" trace_collisions
        (Option.value ~default:(-1) (counter_value "radio.collisions" snap));
      check_int "radio.stalled_rounds counter agrees" from_rounds
        (Option.value ~default:(-1) (counter_value "radio.stalled_rounds" snap)))

let suite =
  [
    Alcotest.test_case "counter semantics on/off" `Quick test_counter_semantics;
    Alcotest.test_case "histogram + quantiles" `Quick test_histogram_and_quantiles;
    Alcotest.test_case "timer semantics" `Quick test_timer_semantics;
    Alcotest.test_case "span nesting + rollup" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "sink NDJSON well-formed" `Quick test_sink_ndjson_well_formed;
    Alcotest.test_case "nan renders as dash" `Quick test_nan_renders_as_dash;
    Alcotest.test_case "sink flush_installed" `Quick test_sink_flush_installed;
    Alcotest.test_case "trace agrees with metrics" `Quick test_trace_agrees_with_metrics;
  ]
