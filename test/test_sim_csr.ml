(* The CSR scale engine: bit-identical to the legacy Sim on shared
   instances (outcome, frontier history, collisions) at any job count,
   structural invariants of the flat layout, the sparse generators'
   degree/simplicity contracts, and the zero-allocation steady state the
   SIMSCALE bench gates on. *)

module Graph = Wx_graph.Graph
module Csr = Wx_graph.Csr
module Gen = Wx_graph.Gen
module Families = Wx_constructions.Families
module Sim = Wx_radio.Sim
module Sim_csr = Wx_radio.Sim_csr
module Protocol = Wx_radio.Protocol
module Rng = Wx_util.Rng
module Intvec = Wx_util.Intvec
module Memgc = Wx_obs.Memgc
open Common

(* Legacy/CSR protocol pairs that must consume identical rng streams. *)
let protocol_pairs =
  [
    (Wx_radio.Flood.protocol, Sim_csr.flood);
    (Wx_radio.Decay_protocol.protocol, Sim_csr.decay);
    (Wx_radio.Decay_protocol.with_phase_length 3, Sim_csr.decay_with_phase_length 3);
    (Wx_radio.Decay_protocol.globally_phased, Sim_csr.decay_globally_phased);
    (Wx_radio.Uniform.protocol 0.35, Sim_csr.uniform 0.35);
  ]

let check_outcomes_equal ctx (a : Sim.outcome) (b : Sim.outcome) =
  check_int (ctx ^ ": rounds") a.Sim.rounds b.Sim.rounds;
  check_true (ctx ^ ": completed") (a.Sim.completed = b.Sim.completed);
  check_int (ctx ^ ": informed") a.Sim.informed_final b.Sim.informed_final;
  check_int (ctx ^ ": collisions") a.Sim.collisions b.Sim.collisions;
  check_true (ctx ^ ": history") (a.Sim.frontier_history = b.Sim.frontier_history)

(* Cap the stalling protocols (flood never finishes on some families) so
   the sweep stays quick; both engines get the same cap. *)
let cap = 400

let run_both g legacy csr_p ~jobs ~range ~seed =
  let a = Sim.run ~max_rounds:cap g ~source:0 legacy (Rng.create seed) in
  let csr = Csr.of_graph g in
  let b = Sim_csr.run ~max_rounds:cap ~jobs ~range csr ~source:0 csr_p (Rng.create seed) in
  (a, b)

let test_equivalence_on_families () =
  List.iter
    (fun f ->
      let g = f.Families.make (rng ~salt:7 ()) 40 in
      List.iter
        (fun (legacy, csr_p) ->
          List.iter
            (fun jobs ->
              (* range 7 forces multi-range sharding even on tiny graphs,
                 so jobs=4 actually crosses the pool. *)
              let a, b = run_both g legacy csr_p ~jobs ~range:7 ~seed:2018 in
              check_outcomes_equal
                (Printf.sprintf "%s/%s/j%d" f.Families.name legacy.Protocol.name jobs)
                a b)
            [ 1; 4 ])
        protocol_pairs)
    Families.all

let test_equivalence_qcheck =
  qcheck ~count:60 "csr = legacy on random graphs (decay, jobs 4)"
    (fun g ->
      Graph.n g >= 1
      &&
      let a, b = run_both g Wx_radio.Decay_protocol.protocol Sim_csr.decay ~jobs:4 ~range:5 ~seed:99 in
      a = b)
    (arbitrary_graph ~lo:2 ~hi:32)

let test_jobs_invariance () =
  (* Larger sparse instance with the default range: identical outcomes at
     every job count, including ones crossing the real pool. *)
  let g = Gen.gnm (rng ~salt:3 ()) 3000 12000 in
  let csr = Csr.of_graph g in
  (* Cap the budget: a gnm instance with an isolated vertex never
     completes, and 4 job counts × the default 64n limit would dominate
     the suite's wall time. *)
  let run jobs =
    Sim_csr.run ~max_rounds:1500 ~jobs ~range:256 csr ~source:0 Sim_csr.decay (Rng.create 42)
  in
  let base = run 1 in
  (* gnm at mean degree 8 may leave a handful of isolated vertices, so ask
     for near-complete spread rather than completion. *)
  check_true "decay informs nearly everyone" (base.Sim.informed_final > 2900);
  List.iter
    (fun jobs -> check_outcomes_equal (Printf.sprintf "jobs %d" jobs) base (run jobs))
    [ 2; 4; 7 ]

(* --- CSR layout invariants --- *)

let test_csr_structure () =
  let g = Gen.margulis 5 in
  let c = Csr.of_graph g in
  check_int "n" (Graph.n g) (Csr.n c);
  check_int "m" (Graph.m g) (Csr.m c);
  let offsets = Csr.offsets c and nbrs = Csr.neighbors c in
  check_int "offsets length" (Graph.n g + 1) (Array.length offsets);
  check_int "packed length" (2 * Graph.m g) offsets.(Graph.n g);
  for v = 0 to Graph.n g - 1 do
    check_int "degree" (Graph.degree g v) (Csr.degree c v);
    let row = Graph.neighbors g v in
    Array.iteri (fun i w -> check_int "neighbor" w nbrs.(offsets.(v) + i)) row
  done;
  check_true "bytes accounts both arrays"
    (Csr.bytes c >= (Array.length offsets + Array.length nbrs) * (Sys.word_size / 8))

(* --- sparse generators --- *)

let test_gnm_invariants () =
  let g = Gen.gnm (rng ()) 500 1500 in
  check_int "n" 500 (Graph.n g);
  check_int "m exact" 1500 (Graph.m g);
  (* Simplicity is enforced by Graph.of_edges; spot-check degree sum. *)
  let degsum = ref 0 in
  Graph.iter_vertices g (fun v -> degsum := !degsum + Graph.degree g v);
  check_int "degree sum = 2m" 3000 !degsum;
  check_true "dense edge count rejected"
    (try
       ignore (Gen.gnm (rng ()) 4 7);
       false
     with Invalid_argument _ -> true)

let test_gnm_deterministic () =
  let a = Gen.gnm (Rng.create 5) 200 600 and b = Gen.gnm (Rng.create 5) 200 600 in
  check_true "same seed, same graph" (Graph.equal a b)

let test_random_regular_config_invariants () =
  let n = 400 and d = 6 in
  let g = Gen.random_regular_config (rng ~salt:11 ()) n d in
  check_int "n" n (Graph.n g);
  check_true "max degree <= d" (Graph.max_degree g <= d);
  (* Simplification drops only self-loops and duplicate pairings; for
     sparse d the deficit is a few edges, not a constant fraction. *)
  check_true "near-regular" (Graph.m g >= n * d * 9 / 10 / 2);
  check_true "odd n*d rejected"
    (try
       ignore (Gen.random_regular_config (rng ()) 5 3);
       false
     with Invalid_argument _ -> true)

let test_inform_seeding () =
  (* Multi-source seeding: both engines accept extra sources and agree on
     the flood evolution from the same seeded set. *)
  let n = 300 in
  let g = Gen.gnm (rng ~salt:31 ()) n 900 in
  let seeds = [ 0; 17; 42; 199; 255 ] in
  let st = Sim_csr.create ~jobs:1 (Csr.of_graph g) ~source:0 in
  let net = Wx_radio.Network.create g 0 in
  List.iter
    (fun v ->
      Sim_csr.inform st v;
      Wx_radio.Network.inform net v)
    seeds;
  Sim_csr.inform st 17;
  check_int "inform is idempotent" (List.length seeds) (Sim_csr.informed_count st);
  check_int "legacy seeded count" (List.length seeds) (Wx_radio.Network.informed_count net);
  check_int "seeded since = current round" 0 (Sim_csr.informed_since st 42);
  let r = Rng.create 1 in
  for i = 1 to 20 do
    ignore (Sim_csr.step st Sim_csr.flood r);
    ignore (Wx_radio.Network.step net (Wx_radio.Network.informed net));
    check_int
      (Printf.sprintf "flood from seeded set agrees at round %d" i)
      (Wx_radio.Network.informed_count net) (Sim_csr.informed_count st)
  done;
  (* Fully seeded network: a flood step is a fixpoint. *)
  let st2 = Sim_csr.create ~jobs:1 (Csr.of_graph g) ~source:0 in
  for v = 0 to n - 1 do
    Sim_csr.inform st2 v
  done;
  check_true "all informed after full seeding" (Sim_csr.all_informed st2);
  check_int "saturated flood informs no one" 0 (Sim_csr.step st2 Sim_csr.flood (Rng.create 2))

(* --- satellite contracts --- *)

let test_round_limit_overflow_safe () =
  check_int "small n" (64 * 100 + 1024) (Sim.round_limit 100);
  check_int "huge n pins to max_int" max_int (Sim.round_limit (max_int / 8));
  check_true "limit is positive for every n" (Sim.round_limit ((max_int - 1024) / 64) > 0)

let test_intvec () =
  let v = Intvec.create ~capacity:2 () in
  check_int "empty" 0 (Intvec.length v);
  for i = 0 to 99 do
    Intvec.push v (i * i)
  done;
  check_int "length" 100 (Intvec.length v);
  check_int "get" 81 (Intvec.get v 9);
  check_true "snapshot" (Intvec.to_array v = Array.init 100 (fun i -> i * i));
  Intvec.clear v;
  check_int "cleared" 0 (Intvec.length v)

let test_zero_alloc_steady_state () =
  (* The acceptance criterion behind the SIMSCALE alloc claim: once the
     network is saturated, a flood step at jobs=1 allocates nothing (the
     randomized protocols additionally pay the Rng's boxed int64 draws, so
     flood is the clean probe of the kernel itself). *)
  let g = Gen.gnm (rng ~salt:23 ()) 2000 8000 in
  let csr = Csr.of_graph g in
  let t = Sim_csr.create ~jobs:1 csr ~source:0 in
  let r = Rng.create 7 in
  (* Saturate first (flood either completes or reaches its fixpoint). *)
  for _ = 1 to 200 do
    ignore (Sim_csr.step t Sim_csr.flood r)
  done;
  Memgc.enable ();
  Fun.protect ~finally:Memgc.disable (fun () ->
      (* Gc.minor_words itself boxes a float (a few words), so the budget
         is a constant independent of the step count: 50 steps under 10
         words means the per-step cost is exactly zero. *)
      let w0 = Memgc.own_minor_words () in
      for _ = 1 to 50 do
        ignore (Sim_csr.step t Sim_csr.flood r)
      done;
      let dw = Memgc.own_minor_words () -. w0 in
      check_true (Printf.sprintf "steady-state flood steps allocate 0 words (got %.0f)" dw)
        (dw < 10.0))

let test_network_step_scratch_reuse () =
  (* Legacy satellite: the step loop reuses its scratch pair, so a long
     saturated flood allocates nothing per round either. *)
  let g = Gen.gnm (rng ~salt:29 ()) 1000 4000 in
  let net = Wx_radio.Network.create g 0 in
  (* Drive flood to its fixpoint (complete or stalled — either is a
     steady state). *)
  for _ = 1 to 100 do
    ignore (Wx_radio.Network.step net (Wx_radio.Network.informed net))
  done;
  Memgc.enable ();
  Fun.protect ~finally:Memgc.disable (fun () ->
      let w0 = Memgc.own_minor_words () in
      for _ = 1 to 50 do
        ignore (Wx_radio.Network.step net (Wx_radio.Network.informed net))
      done;
      let dw = Memgc.own_minor_words () -. w0 in
      check_true (Printf.sprintf "legacy saturated steps allocate 0 words (got %.0f)" dw)
        (dw < 10.0))

let suite =
  [
    Alcotest.test_case "csr = legacy on all families" `Slow test_equivalence_on_families;
    test_equivalence_qcheck;
    Alcotest.test_case "jobs invariance on gnm(3000)" `Slow test_jobs_invariance;
    Alcotest.test_case "csr layout structure" `Quick test_csr_structure;
    Alcotest.test_case "inform seeds extra sources" `Quick test_inform_seeding;
    Alcotest.test_case "gnm invariants" `Quick test_gnm_invariants;
    Alcotest.test_case "gnm deterministic" `Quick test_gnm_deterministic;
    Alcotest.test_case "random_regular_config invariants" `Quick
      test_random_regular_config_invariants;
    Alcotest.test_case "round limit overflow-safe" `Quick test_round_limit_overflow_safe;
    Alcotest.test_case "intvec" `Quick test_intvec;
    Alcotest.test_case "csr steady state allocates zero" `Quick test_zero_alloc_steady_state;
    Alcotest.test_case "legacy step reuses scratch" `Quick test_network_step_scratch_reuse;
  ]
