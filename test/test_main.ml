let () =
  Alcotest.run "wireless-expanders"
    [
      ("rng", Test_rng.suite);
      ("bitset", Test_bitset.suite);
      ("stats", Test_stats.suite);
      ("util-misc", Test_util_misc.suite);
      ("graph", Test_graph.suite);
      ("bipartite", Test_bipartite.suite);
      ("traversal", Test_traversal.suite);
      ("arboricity", Test_arboricity.suite);
      ("spectral", Test_spectral.suite);
      ("nbhd", Test_nbhd.suite);
      ("inc", Test_inc.suite);
      ("measure", Test_measure.suite);
      ("bounds", Test_bounds.suite);
      ("spokesmen", Test_spokesmen.suite);
      ("constructions", Test_constructions.suite);
      ("radio", Test_radio.suite);
      ("sim-csr", Test_sim_csr.suite);
      ("theorems", Test_theorems.suite);
      ("flow", Test_flow.suite);
      ("solvers-ext", Test_solvers_ext.suite);
      ("extensions", Test_extensions.suite);
      ("connectivity", Test_connectivity.suite);
      ("properties", Test_properties.suite);
      ("certificate", Test_certificate.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("memgc", Test_memgc.suite);
      ("report", Test_report.suite);
      ("ledger", Test_ledger.suite);
      ("par", Test_par.suite);
      ("prune", Test_prune.suite);
      ("expose", Test_expose.suite);
    ]
