(* Branch-and-bound pruning: the optimisation must be invisible in the
   results. Every test here compares the pruned enumeration (the default)
   against the unpruned reference path ([~prune:false]) — values AND
   lex-smallest witnesses, sequentially and with a shared incumbent across
   4 worker domains. *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Rng = Wx_util.Rng
module Measure = Wx_expansion.Measure
module Families = Wx_constructions.Families
module Metrics = Wx_obs.Metrics
open Common

let check_witnessed msg (expected : Measure.witnessed) (actual : Measure.witnessed) =
  Alcotest.(check (float 0.0)) (msg ^ " value") expected.Measure.value actual.Measure.value;
  Alcotest.(check bitset_testable) (msg ^ " witness") expected.Measure.witness
    actual.Measure.witness

(* ---- equivalence over the family catalog ---- *)

let families_instances size_hint =
  List.map (fun f -> (f.Families.name, f.Families.make (Rng.create 7) size_hint)) Families.all

let test_families_equivalence_beta () =
  List.iter
    (fun (name, g) ->
      if Graph.n g > 0 then begin
        let reference = Measure.beta_exact ~prune:false ~jobs:1 g in
        List.iter
          (fun jobs ->
            check_witnessed
              (Printf.sprintf "beta %s jobs=%d" name jobs)
              reference
              (Measure.beta_exact ~prune:true ~jobs g))
          [ 1; 4 ];
        let reference_u = Measure.beta_u_exact ~prune:false ~jobs:1 g in
        List.iter
          (fun jobs ->
            check_witnessed
              (Printf.sprintf "beta_u %s jobs=%d" name jobs)
              reference_u
              (Measure.beta_u_exact ~prune:true ~jobs g))
          [ 1; 4 ]
      end)
    (families_instances 12)

let test_families_equivalence_beta_w () =
  List.iter
    (fun (name, g) ->
      if Graph.n g > 0 && Graph.n g <= 12 then begin
        let reference = Measure.beta_w_exact ~prune:false ~jobs:1 g in
        List.iter
          (fun jobs ->
            check_witnessed
              (Printf.sprintf "beta_w %s jobs=%d" name jobs)
              reference
              (Measure.beta_w_exact ~prune:true ~jobs g))
          [ 1; 4 ]
      end)
    (families_instances 10)

(* The optimisation must actually fire: across the catalog, at least one
   instance records cut subtrees (ISSUE acceptance criterion). *)
let test_pruning_fires () =
  Metrics.enable ();
  Fun.protect ~finally:Metrics.disable (fun () ->
      Metrics.reset ();
      List.iter
        (fun (_, g) ->
          if Graph.n g > 0 then ignore (Measure.beta_exact ~prune:true ~jobs:1 g))
        (families_instances 12);
      let pruned = Metrics.counter_value (Metrics.counter "expansion.subtrees_pruned") in
      check_true "subtrees pruned on at least one family instance" (pruned > 0))

(* ---- shared-incumbent tie safety ----

   The incumbent is only allowed to cut STRICTLY worse subtrees; an
   equal-value subtree must survive so the lex tiebreak can still pick a
   lex-smaller witness out of it. Vertex-transitive graphs (cycles,
   hypercubes) maximise ties: every rotation of the minimiser ties, and
   the canonical witness lives in the first shard while later shards keep
   publishing equal incumbents around it. *)

let test_tied_minimisers_keep_lex_witness () =
  List.iter
    (fun g ->
      let reference = Measure.beta_exact ~prune:false ~jobs:1 g in
      List.iter
        (fun jobs ->
          check_witnessed
            (Printf.sprintf "tied witness n=%d jobs=%d" (Graph.n g) jobs)
            reference
            (Measure.beta_exact ~prune:true ~jobs g))
        [ 1; 2; 4; 8 ])
    [ Wx_graph.Gen.cycle 12; Wx_graph.Gen.hypercube 3; Wx_graph.Gen.complete 6 ]

(* qcheck: on random graphs the pruned run with a cross-domain incumbent
   reports exactly the reference value and lex-smallest witness, for all
   three measures. *)
let prop_pruned_equals_unpruned g =
  let check exact =
    let reference = exact ~prune:false ~jobs:1 in
    let pruned = exact ~prune:true ~jobs:4 in
    reference.Measure.value = pruned.Measure.value
    && Bitset.equal reference.Measure.witness pruned.Measure.witness
  in
  check (fun ~prune ~jobs -> Measure.beta_exact ~prune ~jobs g)
  && check (fun ~prune ~jobs -> Measure.beta_u_exact ~prune ~jobs g)
  && check (fun ~prune ~jobs -> Measure.beta_w_exact ~prune ~jobs g)

(* ---- sampled size clamp (bugfix regression) ----

   [min_over_sampled_sets] accepts a caller-supplied kmax that may exceed
   n; draws above n used to crash the sampler inside Rng. They are now
   clamped (after the draw, so the stream stays aligned) and counted. *)

let test_sampled_kmax_clamped () =
  Metrics.enable ();
  Fun.protect ~finally:Metrics.disable (fun () ->
      Metrics.reset ();
      let g = Wx_graph.Gen.cycle 6 in
      let w =
        Measure.min_over_sampled_sets ~jobs:1 g 40 (Rng.create 11) 64
          (Wx_expansion.Nbhd.expansion_of_set g)
      in
      check_true "sampled value finite" (Float.is_finite w.Measure.value);
      check_true "witness within universe" (Bitset.universe_size w.Measure.witness = 6);
      let clamped = Metrics.counter_value (Metrics.counter "expansion.sampled_clamped") in
      (* With kmax = 40 over n = 6, the overwhelming majority of draws
         exceed n; all must be clamped and counted. *)
      check_true "clamped draws counted" (clamped > 0))

(* Determinism of the sampled path is untouched by the clamp: same seed,
   same kmax, same certificate at any job count. *)
let test_sampled_clamp_deterministic () =
  let g = Wx_graph.Gen.cycle 6 in
  let run jobs =
    Measure.min_over_sampled_sets ~jobs g 40 (Rng.create 11) 64
      (Wx_expansion.Nbhd.expansion_of_set g)
  in
  let r1 = run 1 in
  check_witnessed "sampled clamp jobs=4" r1 (run 4)

let suite =
  [
    Alcotest.test_case "families: pruned beta/beta_u = reference" `Quick
      test_families_equivalence_beta;
    Alcotest.test_case "families: pruned beta_w = reference" `Quick
      test_families_equivalence_beta_w;
    Alcotest.test_case "pruning fires on the catalog" `Quick test_pruning_fires;
    Alcotest.test_case "tied minimisers keep lex witness" `Quick
      test_tied_minimisers_keep_lex_witness;
    qcheck ~count:30 "pruned = unpruned on random graphs (all measures)"
      prop_pruned_equals_unpruned
      (arbitrary_graph ~lo:4 ~hi:11);
    Alcotest.test_case "sampled kmax > n clamped and counted" `Quick test_sampled_kmax_clamped;
    Alcotest.test_case "sampled clamp deterministic across jobs" `Quick
      test_sampled_clamp_deterministic;
  ]
