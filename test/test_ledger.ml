(* The longitudinal half of the performance-trajectory layer: the
   wx-ledger/1 digest and codec round-trip, dedup-by-commit append, file
   round-trips with malformed-line reporting, trend-gate verdicts on
   synthetic histories (wall / alloc / rate postures, floor, insufficient
   history), sparklines, and the Prof trace analysis — containment
   nesting, folded stacks, differential profiles. *)

module Json = Wx_obs.Json
module Report = Wx_obs.Report
module Memgc = Wx_obs.Memgc
module Ledger = Wx_obs.Ledger
module Prof = Wx_obs.Prof
open Common

(* ---- synthetic ledgers ---- *)

let exp_digest ?(rates = []) ?(minor = Float.nan) id wall =
  { Ledger.x_id = id; x_wall_s = wall; x_minor_words = minor; x_rates = rates }

let entry ?(commit = "c0") ?(dirty = false) exps =
  {
    Ledger.l_commit = commit;
    l_dirty = dirty;
    l_generated = "20260808T000000Z";
    l_seed = 20180218;
    l_quick = true;
    l_jobs = 2;
    l_repeats = 3;
    l_exps = exps;
  }

(* A history where experiment [id]'s wall walks through [walls], one entry
   (commit c0, c1, ...) per value; minor words and one rate kind ride
   along when given. *)
let history ?minors ?rates id walls =
  List.mapi
    (fun i w ->
      let minor = match minors with Some ms -> List.nth ms i | None -> Float.nan in
      let rates =
        match rates with Some rs -> [ ("units", List.nth rs i) ] | None -> []
      in
      entry ~commit:(Printf.sprintf "c%d" i) [ exp_digest ~rates ~minor id w ])
    walls

let find_trend trends ~metric ?(kind = "") id =
  match
    List.find_opt
      (fun (t : Ledger.trend) ->
        t.Ledger.t_exp = id && t.Ledger.t_metric = metric && t.Ledger.t_kind = kind)
      trends
  with
  | Some t -> t
  | None -> Alcotest.failf "no %s trend for %s" (Ledger.metric_name metric) id

let check_verdict msg expected (t : Ledger.trend) =
  Alcotest.(check string)
    msg
    (match expected with None -> "none" | Some v -> Report.verdict_name v)
    (match t.Ledger.t_verdict with None -> "none" | Some v -> Report.verdict_name v)

(* ---- digest ---- *)

let test_digest () =
  let r =
    Report.make
      ~provenance:[ ("git_commit", "abcd1234+dirty"); ("hostname", "h") ]
      ~seed:7 ~quick:false ~jobs:4 ~repeats:5
      [
        {
          Report.id = "e1";
          title = "t";
          claim = "c";
          wall_s = [ 2.0; 1.0; 3.0 ];
          alloc = Some { Memgc.zero with Memgc.minor_words = 1234 };
          work = [ ("steps", 100) ];
          util = None;
          holds = 1;
          total = 1;
          checks = Json.Null;
          metrics = Json.Null;
        };
      ]
  in
  let e = Ledger.digest r in
  Alcotest.(check string) "dirty suffix stripped" "abcd1234" e.Ledger.l_commit;
  check_true "dirty flag set" e.Ledger.l_dirty;
  check_int "seed" 7 e.Ledger.l_seed;
  check_int "jobs" 4 e.Ledger.l_jobs;
  (match e.Ledger.l_exps with
  | [ x ] ->
      check_float "median wall digested" 2.0 x.Ledger.x_wall_s;
      check_float "minor words" 1234.0 x.Ledger.x_minor_words;
      check_float "rate = units / median wall" 50.0 (List.assoc "steps" x.Ledger.x_rates)
  | _ -> Alcotest.fail "one experiment digest expected");
  (* No provenance commit -> "unknown", not an error. *)
  let r2 = Report.make ~provenance:[] ~seed:1 ~quick:true ~jobs:1 ~repeats:1 [] in
  Alcotest.(check string) "no commit -> unknown" "unknown" (Ledger.digest r2).Ledger.l_commit

(* ---- codec ---- *)

let test_round_trip () =
  let e =
    entry ~commit:"feedface" ~dirty:true
      [
        exp_digest ~rates:[ ("a", 10.5); ("b", 2e6) ] ~minor:42.0 "e1" 0.25;
        exp_digest "e2" 1.5 (* no alloc block, no rates *);
      ]
  in
  match Ledger.entry_of_json (Ledger.entry_to_json e) with
  | Error m -> Alcotest.failf "round trip: %s" m
  | Ok e' ->
      Alcotest.(check string) "commit" e.Ledger.l_commit e'.Ledger.l_commit;
      check_true "dirty" e'.Ledger.l_dirty;
      check_int "exps" 2 (List.length e'.Ledger.l_exps);
      let x1 = List.hd e'.Ledger.l_exps and x2 = List.nth e'.Ledger.l_exps 1 in
      check_float "wall" 0.25 x1.Ledger.x_wall_s;
      check_float "minor" 42.0 x1.Ledger.x_minor_words;
      check_float "rate b" 2e6 (List.assoc "b" x1.Ledger.x_rates);
      check_true "missing minor decodes NaN" (Float.is_nan x2.Ledger.x_minor_words);
      check_true "missing rates decode []" (x2.Ledger.x_rates = [])

let test_codec_rejects () =
  let reject msg j =
    match Ledger.entry_of_json j with
    | Ok _ -> Alcotest.failf "%s: accepted" msg
    | Error _ -> ()
  in
  reject "wrong schema"
    (Json.Obj [ ("schema", Json.String "wx-ledger/999"); ("commit", Json.String "c") ]);
  reject "no schema" (Json.Obj [ ("commit", Json.String "c") ]);
  reject "commit not a string"
    (match Ledger.entry_to_json (entry []) with
    | Json.Obj kvs ->
        Json.Obj (List.map (fun (k, v) -> if k = "commit" then (k, Json.Int 3) else (k, v)) kvs)
    | _ -> Json.Null)

(* ---- append / file IO ---- *)

let test_append_dedup () =
  let l0 = Ledger.append [] (entry ~commit:"aaa" []) in
  let l1 = Ledger.append l0 (entry ~commit:"bbb" []) in
  check_int "two commits, two entries" 2 (List.length l1);
  let l2 = Ledger.append l1 (entry ~commit:"aaa" ~dirty:true []) in
  check_int "re-append replaces, not grows" 2 (List.length l2);
  (match List.rev l2 with
  | newest :: _ ->
      Alcotest.(check string) "replaced entry moves to the end" "aaa" newest.Ledger.l_commit;
      check_true "newest measurement wins" newest.Ledger.l_dirty
  | [] -> Alcotest.fail "empty");
  (* "unknown" commits have no identity to dedup on: always append. *)
  let l3 = Ledger.append (Ledger.append l2 (entry ~commit:"unknown" [])) (entry ~commit:"unknown" []) in
  check_int "unknown always appends" 4 (List.length l3)

let test_file_round_trip () =
  let path = Filename.temp_file "wx-ledger" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let entries =
        [ entry ~commit:"aaa" [ exp_digest "e1" 1.0 ]; entry ~commit:"bbb" [ exp_digest "e1" 2.0 ] ]
      in
      Ledger.save path entries;
      (match Ledger.load path with
      | Error m -> Alcotest.failf "load: %s" m
      | Ok back ->
          check_int "entries back" 2 (List.length back);
          Alcotest.(check string) "order preserved" "bbb" (List.nth back 1).Ledger.l_commit);
      (* A malformed line is an error naming the file and line, and blank
         lines are skipped. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "\nnot json\n";
      close_out oc;
      match Ledger.load path with
      | Ok _ -> Alcotest.fail "malformed line accepted"
      | Error m ->
          check_true "error names the line" (String.length m > 0 && String.contains m ':'))

(* ---- trend gate ---- *)

let test_gate_wall () =
  (* Steady ~1.0s then a 1.5s candidate: ratio 1.5 > 1.25 and above the
     window max -> regression. *)
  let regressed = history "e1" [ 1.0; 1.02; 0.98; 1.01; 1.5 ] in
  let t = find_trend (Ledger.gate regressed) ~metric:Ledger.Wall "e1" in
  check_verdict "wall spike regresses" (Some Report.Regression) t;
  check_float ~eps:1e-6 "baseline is window median" 1.005 t.Ledger.t_baseline;
  (* Same ratio but inside the window's range (a previous sample was just
     as slow): noisy history, not a trend. *)
  let noisy = history "e1" [ 1.0; 1.6; 0.98; 1.01; 1.5 ] in
  check_verdict "spike inside window range is noise" (Some Report.Within_noise)
    (find_trend (Ledger.gate noisy) ~metric:Ledger.Wall "e1");
  (* Improvement is the mirror image. *)
  let improved = history "e1" [ 1.0; 1.02; 0.98; 1.01; 0.5 ] in
  check_verdict "wall drop improves" (Some Report.Improvement)
    (find_trend (Ledger.gate improved) ~metric:Ledger.Wall "e1");
  (* Under the 50ms floor nothing fires, whatever the ratio. *)
  let tiny = history "e1" [ 0.001; 0.001; 0.010 ] in
  let t = find_trend (Ledger.gate tiny) ~metric:Ledger.Wall "e1" in
  check_verdict "under floor is noise" (Some Report.Within_noise) t;
  check_true "note names the floor" (t.Ledger.t_note <> "")

let test_gate_alloc () =
  (* Deterministic counts: a bare 2% step over the window median fires
     with no range test — this is the drift detector. *)
  let minors = [ 1000.0; 1000.0; 1000.0; 1025.0 ] in
  let l = history ~minors "e1" [ 1.0; 1.0; 1.0; 1.0 ] in
  check_verdict "2.5% alloc drift regresses" (Some Report.Regression)
    (find_trend (Ledger.gate l) ~metric:Ledger.Alloc "e1");
  let flat = history ~minors:[ 1000.0; 1000.0; 1005.0 ] "e1" [ 1.0; 1.0; 1.0 ] in
  check_verdict "0.5% stays within tolerance" (Some Report.Within_noise)
    (find_trend (Ledger.gate flat) ~metric:Ledger.Alloc "e1");
  (* The wall floor must NOT silence the alloc trend: counts are exact at
     any speed. *)
  let tiny = history ~minors:[ 1000.0; 1000.0; 1100.0 ] "e1" [ 0.001; 0.001; 0.001 ] in
  check_verdict "alloc gates under the wall floor" (Some Report.Regression)
    (find_trend (Ledger.gate tiny) ~metric:Ledger.Alloc "e1")

let test_gate_rate () =
  (* Rates mirror the wall rule with the axis flipped: a drop below
     1/(1+tol) of the window median AND under the window min regresses. *)
  let rates = [ 100.0; 98.0; 102.0; 60.0 ] in
  let l = history ~rates "e1" [ 1.0; 1.0; 1.0; 1.0 ] in
  check_verdict "rate collapse regresses" (Some Report.Regression)
    (find_trend (Ledger.gate l) ~metric:Ledger.Rate ~kind:"units" "e1");
  let up = history ~rates:[ 100.0; 98.0; 102.0; 150.0 ] "e1" [ 1.0; 1.0; 1.0; 1.0 ] in
  check_verdict "rate jump improves" (Some Report.Improvement)
    (find_trend (Ledger.gate up) ~metric:Ledger.Rate ~kind:"units" "e1");
  let tiny = history ~rates:[ 100.0; 100.0; 10.0 ] "e1" [ 0.001; 0.001; 0.001 ] in
  check_verdict "rate silent under wall floor" (Some Report.Within_noise)
    (find_trend (Ledger.gate tiny) ~metric:Ledger.Rate ~kind:"units" "e1")

let test_gate_insufficient_and_window () =
  (* One entry: nothing to compare against; the verdict is None, never a
     failure. *)
  let l = history "e1" [ 1.0 ] in
  let t = find_trend (Ledger.gate l) ~metric:Ledger.Wall "e1" in
  check_verdict "single entry -> no verdict" None t;
  check_true "note says so" (t.Ledger.t_note = "insufficient history");
  check_true "no regressions from it" (Ledger.regressions (Ledger.gate l) = []);
  (* The window truncates: an ancient slow sample outside the window must
     not absorb a fresh regression. With window 3 only [1.0; 1.01; 1.5]
     are seen and the candidate is out of range. *)
  let l = history "e1" [ 9.0; 1.0; 1.01; 1.5 ] in
  check_verdict "window truncates history" (Some Report.Regression)
    (find_trend (Ledger.gate ~window:3 l) ~metric:Ledger.Wall "e1");
  check_verdict "full history absorbs it" (Some Report.Within_noise)
    (find_trend (Ledger.gate ~window:8 l) ~metric:Ledger.Wall "e1");
  (* Experiments missing from the newest entry are not gated. *)
  let l = [ entry ~commit:"c0" [ exp_digest "gone" 1.0 ]; entry ~commit:"c1" [ exp_digest "e1" 1.0 ] ] in
  check_true "removed experiment not gated"
    (List.for_all (fun (t : Ledger.trend) -> t.Ledger.t_exp = "e1") (Ledger.gate l))

let test_sparkline () =
  Alcotest.(check string) "scales to own range" "▁▄█" (Ledger.sparkline [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check string) "NaN renders as dot" "▁·█" (Ledger.sparkline [ 1.0; Float.nan; 3.0 ]);
  Alcotest.(check string) "flat series mid-level" "▄▄" (Ledger.sparkline [ 5.0; 5.0 ]);
  Alcotest.(check string) "all-NaN keeps the axis" "··" (Ledger.sparkline [ Float.nan; Float.nan ])

(* ---- Prof: trace analysis ---- *)

(* A tiny synthetic catapult document:
     main track (tid 0):  outer [0, 100us] containing inner [10, 40us]
     worker track (tid 1): chunk [0, 30us]
   Self times: outer 60us, inner 40us, chunk 30us. *)
let trace_doc ?(outer_dur = 100.0) ?(inner_dur = 40.0) () =
  let ev ?(args = []) name tid ts dur =
    Json.Obj
      ([
         ("name", Json.String name);
         ("ph", Json.String "X");
         ("ts", Json.Float ts);
         ("dur", Json.Float dur);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid);
       ]
      @ match args with [] -> [] | a -> [ ("args", Json.Obj a) ])
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "thread_name"); ("ph", Json.String "M");
                ("pid", Json.Int 1); ("tid", Json.Int 0);
              ];
            ev "outer" 0 0.0 outer_dur ~args:[ ("minor_words", Json.Int 1000) ];
            ev "inner" 0 10.0 inner_dur ~args:[ ("minor_words", Json.Int 400) ];
            ev "chunk" 1 0.0 30.0;
          ] );
    ]

let profile_of doc =
  match Prof.rows_of_json doc with
  | Error m -> Alcotest.failf "rows_of_json: %s" m
  | Ok rows -> Prof.profile rows

let find_agg ps name =
  match List.find_opt (fun (a : Prof.agg) -> a.Prof.a_name = name) ps with
  | Some a -> a
  | None -> Alcotest.failf "no aggregate for %s" name

let test_prof_profile () =
  let ps = profile_of (trace_doc ()) in
  let outer = find_agg ps "outer" and inner = find_agg ps "inner" in
  check_float "outer total" 100.0 outer.Prof.a_total_us;
  check_float "outer self excludes inner" 60.0 outer.Prof.a_self_us;
  check_float "outer self minor excludes inner" 600.0 outer.Prof.a_self_minor_words;
  check_float "inner self is its own dur" 40.0 inner.Prof.a_self_us;
  check_int "calls counted" 1 inner.Prof.a_calls;
  (* Metadata events are skipped, not mistaken for slices. *)
  check_int "three slices aggregated" 3 (List.length ps)

let test_prof_folded () =
  match Prof.rows_of_json (trace_doc ()) with
  | Error m -> Alcotest.failf "rows: %s" m
  | Ok rows ->
      let f = Prof.folded rows in
      let lines = String.split_on_char '\n' (String.trim f) in
      check_int "one line per distinct stack" 3 (List.length lines);
      check_true "ends with newline" (String.length f > 0 && f.[String.length f - 1] = '\n');
      check_true "nested stack present" (List.mem "main;outer;inner 40" lines);
      check_true "self, not total, at the root" (List.mem "main;outer 60" lines);
      check_true "worker track rooted by name" (List.mem "worker-1;chunk 30" lines);
      (* Every line is "frames value" with an integer value. *)
      List.iter
        (fun l ->
          match String.rindex_opt l ' ' with
          | None -> Alcotest.failf "no value in %S" l
          | Some i -> (
              match int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1)) with
              | Some _ -> ()
              | None -> Alcotest.failf "non-integer value in %S" l))
        lines;
      check_true "empty trace folds to empty" (Prof.folded [] = "")

let test_prof_diff () =
  let old_ = profile_of (trace_doc ()) in
  let new_ = profile_of (trace_doc ~outer_dur:100000.0 ~inner_dur:90000.0 ()) in
  let ds = Prof.diff_profiles ~old_ ~new_ in
  (match ds with
  | first :: _ ->
      Alcotest.(check string) "worst regression leads" "inner" first.Prof.p_name;
      check_float "delta is new - old" (90000.0 -. 40.0) first.Prof.p_delta_self_us;
      check_true "flagged" (Prof.pdelta_regressed first)
  | [] -> Alcotest.fail "empty diff");
  let chunk = List.find (fun (d : Prof.pdelta) -> d.Prof.p_name = "chunk") ds in
  check_true "unchanged span not flagged" (not (Prof.pdelta_regressed chunk));
  (* Self-diff: every delta is 0 and nothing regresses. *)
  let self = Prof.diff_profiles ~old_ ~new_:old_ in
  check_true "self diff clean"
    (List.for_all (fun (d : Prof.pdelta) -> d.Prof.p_delta_self_us = 0.0) self);
  (* Old-only / new-only spans survive with the absent side at 0. *)
  let ds =
    Prof.diff_profiles ~old_ ~new_:(List.filter (fun a -> a.Prof.a_name <> "chunk") old_)
  in
  let gone = List.find (fun (d : Prof.pdelta) -> d.Prof.p_name = "chunk") ds in
  check_int "removed span keeps old calls" 1 gone.Prof.p_calls_old;
  check_int "removed span has no new calls" 0 gone.Prof.p_calls_new

let test_prof_rejects () =
  (match Prof.rows_of_json (Json.Obj [ ("foo", Json.Int 1) ]) with
  | Ok _ -> Alcotest.fail "accepted non-trace"
  | Error _ -> ());
  match
    Prof.rows_of_json
      (Json.Obj
         [
           ( "traceEvents",
             Json.List [ Json.Obj [ ("name", Json.String "x"); ("ph", Json.String "X") ] ] );
         ])
  with
  | Ok _ -> Alcotest.fail "accepted X event without ts/dur"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "report digest" `Quick test_digest;
    Alcotest.test_case "wx-ledger/1 round trip" `Quick test_round_trip;
    Alcotest.test_case "malformed entries rejected" `Quick test_codec_rejects;
    Alcotest.test_case "append dedups by commit" `Quick test_append_dedup;
    Alcotest.test_case "NDJSON file round trip" `Quick test_file_round_trip;
    Alcotest.test_case "wall trend verdicts" `Quick test_gate_wall;
    Alcotest.test_case "alloc trend verdicts" `Quick test_gate_alloc;
    Alcotest.test_case "rate trend verdicts" `Quick test_gate_rate;
    Alcotest.test_case "insufficient history / window" `Quick test_gate_insufficient_and_window;
    Alcotest.test_case "sparkline rendering" `Quick test_sparkline;
    Alcotest.test_case "prof: containment profile" `Quick test_prof_profile;
    Alcotest.test_case "prof: folded stacks" `Quick test_prof_folded;
    Alcotest.test_case "prof: differential profile" `Quick test_prof_diff;
    Alcotest.test_case "prof: malformed traces rejected" `Quick test_prof_rejects;
  ]
