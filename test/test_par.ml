(* The Wx_par domain pool and the determinism contract of the parallel
   expansion measures: pool reductions must equal the sequential fold on
   adversarial chunk geometries, exact measures must report byte-identical
   values and witnesses at any job count, sampled measures must be a pure
   function of the seed, and the metrics registry must not lose updates
   under concurrent increments. *)

module Pool = Wx_par.Pool
module Measure = Wx_expansion.Measure
module Metrics = Wx_obs.Metrics
module Json = Wx_obs.Json
module Gen = Wx_graph.Gen
module Graph = Wx_graph.Graph
module Bitset = Wx_util.Bitset
module Rng = Wx_util.Rng
open Common

(* ---- pool semantics ---- *)

let test_reduce_order_is_sequential () =
  (* combine = list append with [] neutral: the result is exactly the index
     sequence, so any reordering, dropped chunk or double-claimed chunk
     shows up verbatim. Chunk sizes straddle every boundary case: unit,
     non-dividing, equal to n, larger than n. *)
  List.iter
    (fun (n, chunk) ->
      let expected = List.init n Fun.id in
      List.iter
        (fun jobs ->
          let got =
            Pool.parallel_reduce ~jobs ~chunk ~n ~init:[] ~map:(fun i -> [ i ])
              ~combine:(fun a b -> a @ b) ()
          in
          Alcotest.(check (list int))
            (Printf.sprintf "n=%d chunk=%d jobs=%d" n chunk jobs)
            expected got)
        [ 1; 2; 3; 8 ])
    [ (0, 1); (1, 1); (7, 1); (7, 3); (7, 7); (7, 100); (64, 5); (100, 1); (100, 17) ]

let test_reduce_matches_fold () =
  let n = 1000 in
  let expected = n * (n - 1) / 2 in
  List.iter
    (fun (jobs, chunk) ->
      check_int
        (Printf.sprintf "sum jobs=%d chunk=%d" jobs chunk)
        expected
        (Pool.parallel_reduce ~jobs ~chunk ~n ~init:0 ~map:Fun.id ~combine:( + ) ()))
    [ (1, 1); (2, 7); (8, 13); (4, 1000); (3, 999); (8, 1) ]

let test_parallel_for_covers_each_index_once () =
  let n = 257 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~jobs:4 ~chunk:3 ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri (fun i h -> check_int (Printf.sprintf "index %d" i) 1 h) hits

let test_worker_exception_propagates () =
  match
    Pool.parallel_reduce ~jobs:4 ~n:100 ~init:0
      ~map:(fun i -> if i = 57 then failwith "boom" else i)
      ~combine:( + ) ()
  with
  | _ -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Failure m -> check_true "original exception" (m = "boom")

(* ---- weighted reduction (work stealing) ---- *)

let test_weighted_reduce_order_is_sequential () =
  (* Same append-into-a-list oracle as the plain reduction, but across the
     splitting geometries: heavily skewed weights force one index into
     many units, zero weights collapse to single units, and every
     (jobs, oversubscribe) pair exercises a different LPT claim order.
     Each index's parts cover it exactly once, so the folded result must
     still be the exact index sequence. *)
  let weights =
    [
      ("uniform", fun _ -> 1.0);
      ("skewed", fun i -> if i = 0 then 1e6 else 1.0);
      ("geometric", fun i -> 2.0 ** float_of_int (i mod 20));
      ("zero", fun _ -> 0.0);
    ]
  in
  List.iter
    (fun (wname, weight) ->
      List.iter
        (fun (jobs, oversubscribe) ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              let got =
                Pool.parallel_reduce_weighted ~jobs ~oversubscribe ~n ~weight ~init:[]
                  ~map:(fun i ~part ~parts ->
                    check_true "part in range" (0 <= part && part < parts);
                    (* Cover index i on part 0 only: the contract says the
                       caller must cover i exactly once across its parts. *)
                    if part = 0 then begin
                      hits.(i) <- hits.(i) + 1;
                      [ i ]
                    end
                    else [])
                  ~combine:(fun a b -> a @ b) ()
              in
              Alcotest.(check (list int))
                (Printf.sprintf "%s n=%d jobs=%d over=%d" wname n jobs oversubscribe)
                (List.init n Fun.id) got;
              for i = 0 to n - 1 do
                check_int (Printf.sprintf "%s part-0 of %d seen once" wname i) 1 hits.(i)
              done)
            [ 0; 1; 7; 64 ])
        [ (1, 1); (2, 8); (4, 8); (8, 3) ])
    weights

let test_weighted_reduce_splits_cover_ranges () =
  (* Range-splitting usage, as Measure does it: each index owns an integer
     range, parts slice it by recomputing identical boundaries. The global
     sum must match no matter how the units were stolen. *)
  let n = 13 in
  let width i = (i * 37 mod 101) + 1 in
  let bound i part parts = width i * part / parts in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    expected := !expected + (width i * ((width i) - 1) / 2)
  done;
  List.iter
    (fun jobs ->
      let got =
        Pool.parallel_reduce_weighted ~jobs ~n
          ~weight:(fun i -> float_of_int (width i))
          ~init:0
          ~map:(fun i ~part ~parts ->
            let acc = ref 0 in
            for x = bound i part parts to bound i (part + 1) parts - 1 do
              acc := !acc + x
            done;
            !acc)
          ~combine:( + ) ()
      in
      check_int (Printf.sprintf "range sum jobs=%d" jobs) !expected got)
    [ 1; 2; 4; 8 ]

let test_weighted_reduce_rejects_bad_args () =
  let run ?oversubscribe ?(weight = fun _ -> 1.0) () =
    ignore
      (Pool.parallel_reduce_weighted ~jobs:2 ?oversubscribe ~n:4 ~weight ~init:0
         ~map:(fun i ~part:_ ~parts:_ -> i)
         ~combine:( + ) ())
  in
  Alcotest.check_raises "oversubscribe 0"
    (Invalid_argument "Pool.parallel_reduce_weighted: oversubscribe must be >= 1")
    (fun () -> run ~oversubscribe:0 ());
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Pool.parallel_reduce_weighted: weights must be >= 0")
    (fun () -> run ~weight:(fun i -> if i = 3 then -1.0 else 1.0) ())

(* ---- exact measures: values and witnesses identical at any job count ---- *)

let exact_zoo () =
  [
    ("cycle-10", Gen.cycle 10);
    ("grid-3x4", Gen.grid 3 4);
    ("hypercube-3", Gen.hypercube 3);
    ("gnp-11", Gen.gnp (rng ~salt:77 ()) 11 0.35);
  ]

let check_witnessed name (base : Measure.witnessed) (w : Measure.witnessed) =
  check_float (name ^ " value") base.Measure.value w.Measure.value;
  Alcotest.check bitset_testable (name ^ " witness") base.Measure.witness w.Measure.witness

let test_exact_job_independent () =
  List.iter
    (fun (name, g) ->
      let base_b = Measure.beta_exact ~jobs:1 g in
      let base_u = Measure.beta_u_exact ~jobs:1 g in
      let base_w = Measure.beta_w_exact ~jobs:1 g in
      List.iter
        (fun jobs ->
          check_witnessed
            (Printf.sprintf "%s beta jobs=%d" name jobs)
            base_b (Measure.beta_exact ~jobs g);
          check_witnessed
            (Printf.sprintf "%s beta_u jobs=%d" name jobs)
            base_u (Measure.beta_u_exact ~jobs g);
          check_witnessed
            (Printf.sprintf "%s beta_w jobs=%d" name jobs)
            base_w (Measure.beta_w_exact ~jobs g))
        [ 2; 8 ])
    (exact_zoo ())

let test_profiles_job_independent () =
  List.iter
    (fun (name, g) ->
      let base = Measure.profile_beta ~jobs:1 g in
      let base_w = Measure.profile_beta_w ~jobs:1 g in
      List.iter
        (fun jobs ->
          check_true
            (Printf.sprintf "%s profile jobs=%d" name jobs)
            (Measure.profile_beta ~jobs g = base);
          check_true
            (Printf.sprintf "%s profile_w jobs=%d" name jobs)
            (Measure.profile_beta_w ~jobs g = base_w))
        [ 2; 8 ])
    [ ("cycle-10", Gen.cycle 10); ("grid-3x3", Gen.grid 3 3) ]

(* The parallel witness is canonical — the lexicographically smallest
   minimiser — not merely consistent across job counts. On an even cycle
   every arc of kmax vertices attains β; the tiebreak must pick {0..4}. *)
let test_witness_is_lex_smallest () =
  let w = Measure.beta_exact ~jobs:3 (Gen.cycle 10) in
  check_true "lex-smallest arc" (Bitset.elements w.Measure.witness = [ 0; 1; 2; 3; 4 ])

(* ---- sampled measures: pure function of the seed ---- *)

let test_sampled_job_independent () =
  let g = Gen.grid 4 5 in
  (* 100 samples does not divide the 32-sample block, so the last block is
     short — the partial-block path must not disturb determinism. *)
  let run jobs =
    let r = Rng.create 2024 in
    Measure.beta_sampled ~jobs r ~samples:100 g
  in
  let base = run 1 in
  List.iter (fun jobs -> check_witnessed (Printf.sprintf "beta jobs=%d" jobs) base (run jobs)) [ 2; 8 ];
  let run_u jobs =
    let r = Rng.create 55 in
    Measure.beta_u_sampled ~jobs r ~samples:100 g
  in
  let base_u = run_u 1 in
  List.iter
    (fun jobs -> check_witnessed (Printf.sprintf "beta_u jobs=%d" jobs) base_u (run_u jobs))
    [ 2; 8 ];
  let run_w jobs =
    let r = Rng.create 99 in
    Measure.beta_w_sampled ~jobs r ~samples:48 g
  in
  let base_w = run_w 1 in
  List.iter
    (fun jobs -> check_witnessed (Printf.sprintf "beta_w jobs=%d" jobs) base_w (run_w jobs))
    [ 2; 8 ]

(* ---- sampled clamping (the k > 22 silent-discard bugfix) ---- *)

let counter_value name snap =
  match Json.member "counters" snap with
  | Some cs -> ( match Json.member name cs with Some j -> Json.to_int_opt j | None -> None)
  | None -> None

let with_metrics f =
  Metrics.enable ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.disable ())
    f

let test_sampled_clamp_counts_draws () =
  with_metrics (fun () ->
      (* kmax = 25 > 22, so some draws must clamp; a tight inner work limit
         keeps the test fast (clamped draws then prune, small ones score). *)
      let g = Gen.cycle 50 in
      let r = Rng.create 7 in
      let w = Measure.beta_w_sampled ~inner_work_limit:1024 r ~samples:200 g in
      let snap = Metrics.snapshot () in
      let get name = Option.value ~default:0 (counter_value name snap) in
      check_int "every sample drawn" 200 (get "expansion.sampled_sets");
      check_true "clamped draws counted" (get "expansion.sampled_clamped" > 0);
      check_true "small draws still score" (Float.is_finite w.Measure.value);
      check_true "witness non-empty" (not (Bitset.is_empty w.Measure.witness)))

(* ---- batched hot-loop counters ----

   The exact loops accumulate sets_scored / gray_flips / improvements in
   unit-local ints and flush once per work unit; on the unpruned reference
   path ([~prune:false]) the published totals must be exactly the
   per-subset counts — independent of job count, and equal to the
   closed-form enumeration sizes. (With pruning, the visit count is the
   point of the optimisation and is timing-dependent; improvement counts
   additionally depend on the work-stealing unit split, which varies with
   the job count.) *)

let test_metric_totals_job_independent () =
  let g = Gen.cycle 10 in
  let n = 10 in
  let kmax = Measure.max_set_size g in
  let run jobs =
    with_metrics (fun () ->
        ignore (Measure.beta_exact ~prune:false ~jobs g);
        ignore (Measure.beta_u_exact ~prune:false ~jobs g);
        ignore (Measure.beta_w_exact ~prune:false ~jobs g);
        let snap = Metrics.snapshot () in
        let get name = Option.value ~default:0 (counter_value name snap) in
        ( get "expansion.sets_scored",
          get "expansion.gray_flips",
          get "expansion.witness_improvements",
          get "expansion.subtrees_pruned" ))
  in
  let sets1, flips1, imp1, cut1 = run 1 in
  (* Three exact measures, each scoring every non-empty set of size <= kmax
     exactly once. *)
  check_int "sets scored" (3 * Wx_util.Combi.subsets_count_le n kmax) sets1;
  (* One Gray walk of 2^k - 1 flips per outer set of size k. *)
  let expected_flips = ref 0 in
  for k = 1 to kmax do
    expected_flips := !expected_flips + (Wx_util.Combi.binomial n k * ((1 lsl k) - 1))
  done;
  check_int "gray flips" !expected_flips flips1;
  check_true "improvements recorded" (imp1 > 0);
  check_int "unpruned run cuts nothing" 0 cut1;
  List.iter
    (fun jobs ->
      let sets, flips, imp, cut = run jobs in
      check_int (Printf.sprintf "sets scored jobs=%d" jobs) sets1 sets;
      check_int (Printf.sprintf "gray flips jobs=%d" jobs) flips1 flips;
      check_true (Printf.sprintf "improvements recorded jobs=%d" jobs) (imp > 0);
      check_int (Printf.sprintf "no cuts jobs=%d" jobs) 0 cut)
    [ 2; 8 ]

(* ---- named work units (Wx_obs.Work) ---- *)

let test_work_totals_job_independent () =
  let g = Gen.cycle 10 in
  let n = 10 in
  let kmax = Measure.max_set_size g in
  let module Work = Wx_obs.Work in
  let run jobs =
    with_metrics (fun () ->
        ignore (Measure.beta_exact ~prune:false ~jobs g);
        ignore (Measure.beta_w_exact ~prune:false ~jobs g);
        ignore (Measure.beta_sampled ~jobs (Rng.create 3) ~samples:100 g);
        (Work.count Work.sets_scored, Work.count Work.gray_steps, Work.count Work.draws))
  in
  let sets1, flips1, draws1 = run 1 in
  (* Two exact measures score every non-empty set of size <= kmax once. *)
  check_int "work sets" (2 * Wx_util.Combi.subsets_count_le n kmax) sets1;
  let expected_flips = ref 0 in
  for k = 1 to kmax do
    expected_flips := !expected_flips + (Wx_util.Combi.binomial n k * ((1 lsl k) - 1))
  done;
  check_int "work gray steps" !expected_flips flips1;
  check_int "work draws" 100 draws1;
  List.iter
    (fun jobs ->
      let sets, flips, draws = run jobs in
      check_int (Printf.sprintf "work sets jobs=%d" jobs) sets1 sets;
      check_int (Printf.sprintf "work gray steps jobs=%d" jobs) flips1 flips;
      check_int (Printf.sprintf "work draws jobs=%d" jobs) draws1 draws)
    [ 2; 8 ];
  (* Work counters ride the Metrics registry: disabled means frozen. *)
  let before = Work.count Work.sets_scored in
  ignore (Measure.beta_exact ~jobs:1 g);
  check_int "work frozen while metrics disabled" before (Work.count Work.sets_scored)

(* ---- per-worker busy/idle utilization ---- *)

(* A deterministic-shape workload: every index sleeps, so each claimed
   chunk contributes measurable busy time and the per-slot chunk counts
   must add up to the chunk count exactly. *)
let test_util_attribution () =
  with_metrics (fun () ->
      Pool.reset_util ();
      let n = 8 in
      let sum =
        Pool.parallel_reduce ~jobs:4 ~chunk:1 ~n ~init:0
          ~map:(fun i ->
            Unix.sleepf 0.002;
            i)
          ~combine:( + ) ()
      in
      check_int "reduce correct under util accounting" (n * (n - 1) / 2) sum;
      let u = Pool.util () in
      check_int "one parallel run" 1 u.Pool.u_runs;
      check_int "no sequential runs" 0 u.Pool.u_seq_runs;
      check_int "chunks conserved" n
        (Array.fold_left (fun acc s -> acc + s.Pool.s_chunks) 0 u.Pool.u_slots);
      (* 8 sleeping chunks of ~2ms: at least half must show up as busy. *)
      check_true "busy time attributed" (u.Pool.u_busy_ns > 8_000_000);
      check_true "busy never exceeds capacity" (u.Pool.u_busy_ns <= u.Pool.u_capacity_ns);
      Array.iter
        (fun s -> check_true "slot busy within its span" (s.Pool.s_busy_ns <= s.Pool.s_span_ns))
        u.Pool.u_slots;
      check_true "idle tail non-negative" (u.Pool.u_idle_tail_ns >= 0);
      check_true "max tail >= mean tail"
        (u.Pool.u_max_idle_tail_ns * u.Pool.u_runs >= u.Pool.u_idle_tail_ns);
      (* jobs:1 takes the sequential path and lands in the other bucket. *)
      Pool.reset_util ();
      ignore (Pool.parallel_reduce ~jobs:1 ~n ~init:0 ~map:Fun.id ~combine:( + ) ());
      let u = Pool.util () in
      check_int "sequential run recorded" 1 u.Pool.u_seq_runs;
      check_int "no parallel runs" 0 u.Pool.u_runs;
      check_int "caller slot owns every chunk" n
        (Array.fold_left (fun acc s -> acc + s.Pool.s_chunks) 0 u.Pool.u_slots))

(* The zero-cost contract, now assertable: an uninstrumented pool run may
   not touch the monotonic clock at all (Metrics, tracing and progress all
   off — the only Clock.now_ns calls are behind the instrumented flag). *)
let test_no_clock_reads_while_disabled () =
  Metrics.disable ();
  Wx_obs.Trace_export.disable ();
  Wx_obs.Progress.disable ();
  (* Warm the pool separately: domain spawn paths are not part of the
     contract, steady-state runs are. *)
  ignore (Pool.parallel_reduce ~jobs:4 ~n:32 ~init:0 ~map:Fun.id ~combine:( + ) ());
  let before = Wx_obs.Clock.read_count () in
  let sum = Pool.parallel_reduce ~jobs:4 ~n:256 ~init:0 ~map:Fun.id ~combine:( + ) () in
  let after = Wx_obs.Clock.read_count () in
  check_int "reduce still correct" (256 * 255 / 2) sum;
  check_int "zero clock reads while disabled" 0 (after - before);
  (* And the same run under metrics does read the clock. *)
  with_metrics (fun () ->
      let before = Wx_obs.Clock.read_count () in
      ignore (Pool.parallel_reduce ~jobs:4 ~n:256 ~init:0 ~map:Fun.id ~combine:( + ) ());
      check_true "instrumented run reads the clock" (Wx_obs.Clock.read_count () > before))

(* ---- live progress: reporting must never perturb results ---- *)

let test_progress_identical_results () =
  let module Progress = Wx_obs.Progress in
  let g = Gen.gnp (rng ~salt:78 ()) 11 0.35 in
  let base = Measure.beta_w_exact ~jobs:1 g in
  check_true "progress off by default" (not (Progress.is_enabled ()));
  Progress.enable ();
  Fun.protect ~finally:Progress.disable (fun () ->
      List.iter
        (fun jobs ->
          check_witnessed
            (Printf.sprintf "beta_w with progress jobs=%d" jobs)
            base
            (Measure.beta_w_exact ~jobs g))
        [ 1; 4 ]);
  (* Once disabled again, ticking the shared dummy task stays inert. *)
  let t = Progress.start ~label:"idle" ~total:100 () in
  Progress.tick t 50;
  Progress.finish t

(* ---- metrics under concurrency ---- *)

let test_counters_race_free () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.par.counter" in
      let tasks = 32 and per = 10_000 in
      Pool.parallel_for ~jobs:8 ~n:tasks (fun _ ->
          for _ = 1 to per do
            Metrics.incr c
          done);
      check_int "no lost increments"
        (tasks * per)
        (Option.value ~default:(-1) (counter_value "test.par.counter" (Metrics.snapshot ()))))

let test_histogram_shards_merge () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.par.hist" in
      let tasks = 16 and per = 500 in
      Pool.parallel_for ~jobs:4 ~n:tasks (fun _ ->
          for _ = 1 to per do
            Metrics.observe h 4.0
          done);
      let snap = Metrics.snapshot () in
      let hj =
        match Json.member "histograms" snap with
        | Some hs -> Option.get (Json.member "test.par.hist" hs)
        | None -> Alcotest.fail "no histograms section"
      in
      check_int "merged count" (tasks * per)
        (Option.get (Json.to_int_opt (Option.get (Json.member "count" hj))));
      check_float "merged sum"
        (4.0 *. float_of_int (tasks * per))
        (Option.get (Json.to_float_opt (Option.get (Json.member "sum" hj)))))

let suite =
  [
    Alcotest.test_case "reduce preserves fold order" `Quick test_reduce_order_is_sequential;
    Alcotest.test_case "reduce matches fold" `Quick test_reduce_matches_fold;
    Alcotest.test_case "for covers every index once" `Quick test_parallel_for_covers_each_index_once;
    Alcotest.test_case "worker exception propagates" `Quick test_worker_exception_propagates;
    Alcotest.test_case "weighted reduce preserves fold order" `Quick
      test_weighted_reduce_order_is_sequential;
    Alcotest.test_case "weighted reduce splits cover ranges" `Quick
      test_weighted_reduce_splits_cover_ranges;
    Alcotest.test_case "weighted reduce rejects bad args" `Quick
      test_weighted_reduce_rejects_bad_args;
    Alcotest.test_case "exact values+witnesses job-independent" `Quick test_exact_job_independent;
    Alcotest.test_case "profiles job-independent" `Quick test_profiles_job_independent;
    Alcotest.test_case "witness is lex-smallest" `Quick test_witness_is_lex_smallest;
    Alcotest.test_case "sampled reproducible across jobs" `Quick test_sampled_job_independent;
    Alcotest.test_case "sampled clamp counts draws" `Quick test_sampled_clamp_counts_draws;
    Alcotest.test_case "batched counter totals job-independent" `Quick
      test_metric_totals_job_independent;
    Alcotest.test_case "work totals job-independent" `Quick test_work_totals_job_independent;
    Alcotest.test_case "utilization attribution deterministic" `Quick test_util_attribution;
    Alcotest.test_case "no clock reads while disabled" `Quick test_no_clock_reads_while_disabled;
    Alcotest.test_case "progress never perturbs results" `Quick test_progress_identical_results;
    Alcotest.test_case "counters race-free" `Quick test_counters_race_free;
    Alcotest.test_case "histogram shards merge" `Quick test_histogram_shards_merge;
  ]
