(* The Memgc allocation-observability layer: spans see a known-size
   allocation, counters are monotone and diff cleanly, disabled mode
   performs literally zero Gc reads (the zero-cost contract), the pool
   attributes worker allocation, deltas over an identical workload are
   deterministic (what the bench alloc gate relies on), and the major-cycle
   alarm fires. *)

module Json = Wx_obs.Json
module Metrics = Wx_obs.Metrics
module Memgc = Wx_obs.Memgc
module Span = Wx_obs.Span
module Pool = Wx_par.Pool
open Common

(* Every test leaves both systems disabled so the rest of the suite keeps
   its zero-cost default. *)
let with_memgc ?(metrics = false) f =
  Memgc.enable ();
  if metrics then Metrics.enable ();
  Metrics.reset ();
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Span.reset ();
      Metrics.disable ();
      Memgc.disable ())
    f

(* A 1KiB bytes block is 130 words on 64-bit (1 header + 129 payload);
   opaque_identity keeps the allocation from being optimized away. *)
let block_words = 1 + ((1024 / (Sys.word_size / 8)) + 1)

let burn blocks =
  for _ = 1 to blocks do
    ignore (Sys.opaque_identity (Bytes.create 1024))
  done

let test_span_attribution () =
  with_memgc (fun () ->
      let blocks = 1000 in
      Span.with_ ~name:"test.memgc.alloc" (fun () -> burn blocks);
      match Span.root_spans () with
      | [ s ] ->
          check_true "span name" (s.Span.name = "test.memgc.alloc");
          let expected = blocks * block_words in
          check_true "span sees at least the burned words" (s.Span.minor_words >= expected);
          (* Loose upper bound: the measurement overhead itself is well
             under one extra block per burned block. *)
          check_true "span attribution is not wildly inflated"
            (s.Span.minor_words < 2 * expected);
          check_true "no children, so self = total"
            (Span.self_minor_words s = s.Span.minor_words)
      | l -> Alcotest.failf "expected 1 root span, got %d" (List.length l))

let test_self_vs_rollup () =
  with_memgc (fun () ->
      Span.with_ ~name:"outer" (fun () ->
          burn 500;
          Span.with_ ~name:"inner" (fun () -> burn 1500));
      match Span.root_spans () with
      | [ outer ] ->
          let inner = match Span.children outer with [ i ] -> i | _ -> Alcotest.fail "no inner" in
          check_true "outer total covers inner" (outer.Span.minor_words >= inner.Span.minor_words);
          check_true "inner allocated more than outer's own code"
            (inner.Span.minor_words > Span.self_minor_words outer);
          check_true "rollup = inner total" (Span.rollup_minor_words outer = inner.Span.minor_words)
      | l -> Alcotest.failf "expected 1 root span, got %d" (List.length l))

let test_monotone_and_diff () =
  with_memgc (fun () ->
      let a = Memgc.read () in
      burn 100;
      let b = Memgc.read () in
      check_true "minor words monotone" (b.Memgc.minor_words >= a.Memgc.minor_words);
      check_true "collections monotone"
        (b.Memgc.minor_collections >= a.Memgc.minor_collections
        && b.Memgc.major_collections >= a.Memgc.major_collections);
      let d = Memgc.diff ~before:a ~after:b in
      check_true "delta covers the burn" (d.Memgc.minor_words >= 100 * block_words);
      check_true "delta counters non-negative"
        (d.Memgc.promoted_words >= 0 && d.Memgc.major_words >= 0 && d.Memgc.compactions >= 0);
      check_int "top_heap is a level, not a rate" b.Memgc.top_heap_words d.Memgc.top_heap_words)

let test_disabled_is_free () =
  (* Metrics stay on so spans and the pool still run their instrumented
     paths — the claim under test is that none of them touch the Gc. *)
  Metrics.enable ();
  Metrics.reset ();
  Span.reset ();
  Memgc.disable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Span.reset ();
      Metrics.disable ())
    (fun () ->
      let before = Memgc.gc_read_count () in
      check_true "read is zero" (Memgc.read () = Memgc.zero);
      check_float "own words is zero" 0.0 (Memgc.own_minor_words ());
      Span.with_ ~name:"test.memgc.disabled" (fun () -> burn 50);
      let sum =
        Pool.parallel_reduce ~jobs:2 ~n:64 ~init:0
          ~map:(fun i -> ignore (Sys.opaque_identity (Bytes.create 64)); i)
          ~combine:( + ) ()
      in
      check_int "pool still correct" (64 * 63 / 2) sum;
      check_int "zero Gc reads while disabled" before (Memgc.gc_read_count ());
      (match Span.root_spans () with
      | [ s ] -> check_int "span records no words while disabled" 0 s.Span.minor_words
      | _ -> Alcotest.fail "span missing"))

let test_pool_worker_attribution () =
  with_memgc ~metrics:true (fun () ->
      let sum =
        Pool.parallel_reduce ~jobs:2 ~chunk:8 ~n:64 ~init:0
          ~map:(fun i -> ignore (Sys.opaque_identity (Bytes.create 1024)); i)
          ~combine:( + ) ()
      in
      check_int "reduce correct under attribution" (64 * 63 / 2) sum;
      let snap = Metrics.snapshot () in
      let hist name =
        match Json.member "histograms" snap with
        | Some hs -> Json.member name hs
        | None -> None
      in
      let stats name =
        match hist name with
        | Some h ->
            ( Option.get (Json.to_int_opt (Option.get (Json.member "count" h))),
              Option.get (Json.to_float_opt (Option.get (Json.member "sum" h))) )
        | None -> Alcotest.failf "histogram %s missing" name
      in
      let wcount, wsum = stats "pool.worker_minor_words" in
      let ccount, csum = stats "pool.chunk_minor_words" in
      check_int "one observation per worker slot" 2 wcount;
      check_int "one observation per chunk" 8 ccount;
      (* 64 iterations x one 1KiB block each, split across chunks/workers. *)
      check_true "chunks account for the map's allocation"
        (csum >= float_of_int (64 * block_words));
      check_true "workers cover their chunks" (wsum >= csum *. 0.99))

let test_pool_credit_matches_worker_histogram () =
  (* Regression for the worker-exit credit: spawned workers push their
     minor-word delta into Memgc's foreign accumulator with a {e rounded}
     conversion (a truncating one drifts low against the per-worker
     histogram). Reconciliation: the histogram records every worker's
     delta including the caller domain (tid 0), the foreign accumulator
     only the spawned ones — so (hist sum − foreign credit) must be tid
     0's share: non-negative and bounded by the caller's own delta, with
     half a word of rounding slack per spawned worker. *)
  with_memgc ~metrics:true (fun () ->
      let jobs = 4 in
      let foreign0 = Memgc.foreign_minor_words () in
      let own0 = Memgc.own_minor_words () in
      let sum =
        Pool.parallel_reduce ~jobs ~chunk:4 ~n:128 ~init:0
          ~map:(fun i -> ignore (Sys.opaque_identity (Bytes.create 512)); i)
          ~combine:( + ) ()
      in
      let own_delta = Memgc.own_minor_words () -. own0 in
      let foreign_delta = float_of_int (Memgc.foreign_minor_words () - foreign0) in
      check_int "reduce correct" (128 * 127 / 2) sum;
      let snap = Metrics.snapshot () in
      let wcount, wsum =
        match Json.member "histograms" snap with
        | Some hs -> (
            match Json.member "pool.worker_minor_words" hs with
            | Some h ->
                ( Option.get (Json.to_int_opt (Option.get (Json.member "count" h))),
                  Option.get (Json.to_float_opt (Option.get (Json.member "sum" h))) )
            | None -> Alcotest.fail "worker histogram missing")
        | None -> Alcotest.fail "no histograms"
      in
      check_int "one observation per worker" jobs wcount;
      let slack = 0.5 *. float_of_int (jobs - 1) in
      let tid0_share = wsum -. foreign_delta in
      check_true "credit never exceeds the histogram" (tid0_share >= -.slack);
      check_true "histogram minus credit is the caller domain's share"
        (tid0_share <= own_delta +. slack))

let test_delta_determinism () =
  with_memgc (fun () ->
      let workload () =
        Pool.parallel_reduce ~jobs:2 ~chunk:8 ~n:256 ~init:0
          ~map:(fun i -> ignore (Sys.opaque_identity (Bytes.create 256)); i)
          ~combine:( + ) ()
      in
      let measure () =
        let g0 = Memgc.read () in
        ignore (workload ());
        let g1 = Memgc.read () in
        (Memgc.diff ~before:g0 ~after:g1).Memgc.minor_words
      in
      (* Warm-up pays one-time costs (DLS shards, lazy init) outside the
         measured window, mirroring what bench record's repeat loop sees. *)
      ignore (measure ());
      let a = measure () and b = measure () in
      check_int "identical workload, identical minor words" a b)

let test_alarm () =
  with_memgc (fun () ->
      Memgc.install_alarm ();
      Fun.protect ~finally:Memgc.remove_alarm (fun () ->
          let before = Memgc.major_cycles () in
          Gc.full_major ();
          Gc.full_major ();
          check_true "alarm saw the forced major cycles" (Memgc.major_cycles () > before)))

let test_codec () =
  let c =
    {
      Memgc.minor_words = 650_489;
      promoted_words = 1_234;
      major_words = 2_345;
      minor_collections = 7;
      major_collections = 2;
      compactions = 1;
      forced_major_collections = 1;
      top_heap_words = 262_144;
    }
  in
  (match Memgc.of_json (Memgc.to_json c) with
  | Some d -> check_true "codec round trip" (d = c)
  | None -> Alcotest.fail "round trip failed");
  check_true "garbage decodes to None" (Memgc.of_json (Json.String "nope") = None);
  check_true "render mentions the minor count"
    (let r = Memgc.render c in
     let has_sub needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     has_sub "650489" r)

let suite =
  [
    Alcotest.test_case "span sees a known-size allocation" `Quick test_span_attribution;
    Alcotest.test_case "self vs rollup attribution" `Quick test_self_vs_rollup;
    Alcotest.test_case "counters monotone, diff sane" `Quick test_monotone_and_diff;
    Alcotest.test_case "disabled mode performs zero Gc reads" `Quick test_disabled_is_free;
    Alcotest.test_case "pool attributes worker allocation" `Quick test_pool_worker_attribution;
    Alcotest.test_case "pool credit reconciles with worker histogram" `Quick
      test_pool_credit_matches_worker_histogram;
    Alcotest.test_case "deltas deterministic over identical work" `Quick test_delta_determinism;
    Alcotest.test_case "major-cycle alarm fires" `Quick test_alarm;
    Alcotest.test_case "counters codec round trip" `Quick test_codec;
  ]
