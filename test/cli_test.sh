#!/usr/bin/env bash
# End-to-end CLI checks for the perf-trajectory tooling: exit-status
# contracts that the unit suite cannot see because they live in wx's
# cmdliner wiring — prof propagating the inner command's failure, the
# history append/show/gate loop on a real report, prof diff / --folded on
# real traces. Run by dune (see test/dune): $1 = wx.exe, $2 = a committed
# wx-bench report.
set -u

WX=$1
REPORT=$2
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fails=0
check() { # check DESC EXPECTED_RC ACTUAL_RC
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)" >&2
    fails=$((fails + 1))
  else
    echo "ok: $1"
  fi
}

# ---- prof exit-status propagation (the wx prof exit bug) ----
"$WX" prof --out "$tmp/ok.trace" -- core 64 >"$tmp/ok.out" 2>&1
check "prof propagates inner success" 0 $?
grep -q "hottest spans" "$tmp/ok.out"
check "successful prof prints the span table" 0 $?

"$WX" prof --out "$tmp/bad.trace" -- core 63 >"$tmp/bad.out" 2>"$tmp/bad.err"
check "prof propagates inner failure (63 is not a power of two)" 1 $?
grep -q "hottest spans" "$tmp/bad.out" "$tmp/bad.err"
check "failed prof suppresses the span table" 1 $?
test -s "$tmp/bad.trace"
check "failed prof still writes the trace" 0 $?

"$WX" prof >/dev/null 2>&1
check "prof with no inner command is a usage error" 2 $?

# ---- folded export ----
"$WX" prof --out "$tmp/a.trace" --folded "$tmp/a.folded" -- core 64 >/dev/null 2>&1
check "prof --folded" 0 $?
# Every folded line is "frame(;frame)* <integer>", rooted at a track name.
awk '!/^(main|worker-[0-9]+)(;[^ ]+)* [0-9]+$/ { exit 1 }' "$tmp/a.folded"
check "folded lines are well-formed collapsed stacks" 0 $?

# ---- prof diff ----
"$WX" prof --out "$tmp/b.trace" -- core 256 >/dev/null 2>&1
"$WX" prof diff "$tmp/a.trace" "$tmp/a.trace" >/dev/null 2>&1
check "prof diff of a trace against itself is clean" 0 $?
"$WX" prof diff --soft --min-self 0 --tolerance 0 "$tmp/a.trace" "$tmp/b.trace" >/dev/null 2>&1
check "prof diff --soft never fails on regressions" 0 $?
"$WX" prof diff "$tmp/a.trace" /dev/null >/dev/null 2>&1
check "prof diff on a non-trace exits 2" 2 $?

# ---- bench history ----
L="$tmp/ledger.ndjson"
"$WX" bench history append "$REPORT" --ledger "$L" >/dev/null 2>&1
check "history append creates the ledger" 0 $?
"$WX" bench history append "$REPORT" --ledger "$L" >/dev/null 2>&1
check "history re-append dedups" 0 $?
test "$(wc -l <"$L")" -eq 1
check "one commit, one ledger line" 0 $?

"$WX" bench history show --ledger "$L" >/dev/null 2>&1
check "history show" 0 $?
"$WX" bench history show --metric rate -e e1 --ledger "$L" >/dev/null 2>&1
check "history show --metric rate -e" 0 $?
"$WX" bench history gate --ledger "$L" >/dev/null 2>&1
check "history gate on a one-entry ledger is clean" 0 $?
"$WX" bench history gate --ledger "$tmp/absent.ndjson" >/dev/null 2>&1
check "history gate on a missing ledger exits 2" 2 $?
echo "not json" >>"$L"
"$WX" bench history gate --ledger "$L" >/dev/null 2>&1
check "history gate on a corrupt ledger exits 2" 2 $?

# --json keeps stdout pure NDJSON with a machine-readable verdict.
head -n 1 "$L" >"$L.clean"
"$WX" bench history gate --json --ledger "$L.clean" >"$tmp/gate.ndjson" 2>/dev/null
check "history gate --json" 0 $?
grep -q '"event":"history.verdict"' "$tmp/gate.ndjson" ||
  grep -q 'history.verdict' "$tmp/gate.ndjson"
check "gate --json emits history.verdict" 0 $?

"$WX" bench diff --json --soft "$REPORT" "$REPORT" >"$tmp/diff.ndjson" 2>/dev/null
check "bench diff --json --soft" 0 $?
grep -q 'bench.verdict' "$tmp/diff.ndjson"
check "diff --json emits bench.verdict" 0 $?

# ---- live exposition (--expose) ----
# A handicapped single-experiment bench stays alive long enough to scrape
# twice; bash's /dev/tcp keeps this curl-free.
scrape() { # scrape PORT PATH -> response (headers + body) on stdout
  exec 3<>"/dev/tcp/127.0.0.1/$1" 2>/dev/null || return 1
  printf 'GET %s HTTP/1.0\r\n\r\n' "$2" >&3
  cat <&3
  exec 3<&- 3>&-
}
strip_headers() { sed '1,/^\r\{0,1\}$/d' "$1"; }

EPORT=$((21000 + RANDOM % 20000))
WX_BENCH_HANDICAP_MS=1200 "$WX" bench record --quick -e e1 --repeats 3 --jobs 2 \
  --out "$tmp/exposed.json" --force --expose "$EPORT" \
  >"$tmp/expose.out" 2>"$tmp/expose.err" &
EPID=$!

up=1
for _ in $(seq 1 50); do
  if scrape "$EPORT" /metrics >"$tmp/scrape1.raw" 2>/dev/null && [ -s "$tmp/scrape1.raw" ]; then
    up=0
    break
  fi
  sleep 0.1
done
check "expose endpoint comes up" 0 $up

if [ "$up" -eq 0 ]; then
  strip_headers "$tmp/scrape1.raw" >"$tmp/scrape1.txt"
  # Prometheus text exposition 0.0.4: every line is a comment, blank, or
  # "name{labels} value" with a float / NaN / +-Inf value.
  awk '!(/^#/ || /^$/ || /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$/) { bad = 1; exit 1 } END { exit bad }' "$tmp/scrape1.txt"
  check "first scrape is well-formed exposition text" 0 $?

  sleep 0.7
  scrape "$EPORT" /metrics >"$tmp/scrape2.raw" 2>/dev/null
  check "second scrape" 0 $?
  strip_headers "$tmp/scrape2.raw" >"$tmp/scrape2.txt"

  s1=$(awk '$1 == "wx_expose_scrapes" { print $2 }' "$tmp/scrape1.txt")
  s2=$(awk '$1 == "wx_expose_scrapes" { print $2 }' "$tmp/scrape2.txt")
  [ -n "$s1" ] && [ -n "$s2" ] && [ "${s2%.*}" -gt "${s1%.*}" ]
  check "scrape counter is monotone between scrapes" 0 $?

  # A scrape that lands before the run has scored anything simply has no
  # work counter yet; absent reads as zero.
  w1=$(awk '$1 == "wx_work_sets_scored" { print $2 }' "$tmp/scrape1.txt")
  w2=$(awk '$1 == "wx_work_sets_scored" { print $2 }' "$tmp/scrape2.txt")
  w1=${w1:-0}
  [ -n "$w2" ] && [ "${w2%.*}" -ge "${w1%.*}" ]
  check "work counters are monotone between scrapes" 0 $?

  grep -q '^wx_build_info{' "$tmp/scrape1.txt"
  check "build info gauge is exposed" 0 $?

  "$WX" top --once "$EPORT" >"$tmp/top.out" 2>&1
  check "wx top --once renders a frame" 0 $?
  grep -q "wx top" "$tmp/top.out"
  check "top frame carries the header" 0 $?

  # A second process asking for the same port must warn and keep going.
  "$WX" info cycle 16 --expose "$EPORT" >/dev/null 2>"$tmp/bind.err"
  check "port collision does not fail the run" 0 $?
  grep -q "cannot bind" "$tmp/bind.err"
  check "port collision warns on stderr" 0 $?
fi

wait "$EPID"
check "exposed bench run completes cleanly" 0 $?
grep -q "\[expose\] serving" "$tmp/expose.err"
check "exposed run announces its endpoint" 0 $?

if [ "$fails" -gt 0 ]; then
  echo "$fails CLI check(s) failed" >&2
  exit 1
fi
echo "all CLI checks passed"
