(* Differential coverage for the incremental delta-scoring engine:
   [Nbhd.Inc] counters must track the naive set-algebra operators under any
   add/remove sequence, the delta enumerators must report retained prefixes
   that actually reconstruct each subset, and the exact measures built on
   top must return values and witnesses bit-identical to a from-scratch
   reference minimiser at any job count. *)

module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
module Combi = Wx_util.Combi
module Rng = Wx_util.Rng
module Nbhd = Wx_expansion.Nbhd
module Measure = Wx_expansion.Measure
module Families = Wx_constructions.Families
open Common

(* ---- Inc counters vs naive operators ---- *)

let walk_graphs () =
  [
    ("dense", Gen.gnp (rng ~salt:101 ()) 14 0.7);
    ("sparse", Gen.gnp (rng ~salt:102 ()) 16 0.1);
    ("disconnected", Graph.disjoint_union (Gen.cycle 7) (Gen.gnp (rng ~salt:103 ()) 9 0.3));
    ("isolated", Graph.disjoint_union (Gen.complete 5) (Gen.gnp (rng ~salt:104 ()) 6 0.0));
  ]

let check_inc_state name g inc s =
  check_int (name ^ " cardinal") (Bitset.cardinal s) (Nbhd.Inc.cardinal inc);
  check_int (name ^ " boundary")
    (Bitset.cardinal (Nbhd.gamma_minus g s))
    (Nbhd.Inc.boundary inc);
  check_int (name ^ " unique") (Bitset.cardinal (Nbhd.gamma1 g s)) (Nbhd.Inc.unique inc)

let test_inc_matches_naive_random_walk () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let r = rng ~salt:17 () in
      let inc = Nbhd.Inc.create g in
      let s = Bitset.create n in
      for step = 1 to 300 do
        let v = Rng.int r n in
        if Bitset.mem s v then begin
          Bitset.remove_inplace s v;
          Nbhd.Inc.remove inc v
        end
        else begin
          Bitset.add_inplace s v;
          Nbhd.Inc.add inc v
        end;
        check_inc_state (Printf.sprintf "%s step %d" name step) g inc s;
        let probe = Rng.int r n in
        check_int
          (Printf.sprintf "%s step %d deg_in" name step)
          (Nbhd.deg_in g probe s)
          (Nbhd.Inc.deg_in inc probe);
        check_true
          (Printf.sprintf "%s step %d mem" name step)
          (Bitset.mem s probe = Nbhd.Inc.mem inc probe)
      done)
    (walk_graphs ())

let test_inc_reset_reuse () =
  let g = Gen.grid 4 4 in
  let n = Graph.n g in
  let inc = Nbhd.Inc.create g in
  let sets = [ [ 0; 1; 5 ]; [ 15 ]; [ 2; 3; 6; 7; 10 ]; [ 0; 4; 8; 12 ] ] in
  List.iter
    (fun elts ->
      List.iter (Nbhd.Inc.add inc) elts;
      let s = Bitset.of_list n elts in
      (* A reused-after-reset arena must agree with a fresh one. *)
      let fresh = Nbhd.Inc.create g in
      List.iter (Nbhd.Inc.add fresh) elts;
      check_int "reused = fresh boundary" (Nbhd.Inc.boundary fresh) (Nbhd.Inc.boundary inc);
      check_int "reused = fresh unique" (Nbhd.Inc.unique fresh) (Nbhd.Inc.unique inc);
      check_inc_state "reused arena" g inc s;
      Nbhd.Inc.reset inc;
      check_int "reset cardinal" 0 (Nbhd.Inc.cardinal inc);
      check_int "reset boundary" 0 (Nbhd.Inc.boundary inc);
      check_int "reset unique" 0 (Nbhd.Inc.unique inc))
    sets

let test_inc_rejects_double_ops () =
  let g = Gen.cycle 5 in
  let inc = Nbhd.Inc.create g in
  Nbhd.Inc.add inc 2;
  (match Nbhd.Inc.add inc 2 with
  | () -> Alcotest.fail "expected Invalid_argument on double add"
  | exception Invalid_argument _ -> ());
  match Nbhd.Inc.remove inc 3 with
  | () -> Alcotest.fail "expected Invalid_argument on absent remove"
  | exception Invalid_argument _ -> ()

(* qcheck property: on random graphs, building any subset through the arena
   reproduces the naive counters. *)
let prop_inc_counts_random_subset g =
  let n = Graph.n g in
  let r = Rng.create (1 + (Graph.m g * 7919) + n) in
  let inc = Nbhd.Inc.create g in
  let s = Bitset.create n in
  let ok = ref true in
  for _ = 1 to 3 do
    Nbhd.Inc.reset inc;
    Bitset.clear_inplace s;
    let size = Rng.int r (n + 1) in
    for _ = 1 to size do
      let v = Rng.int r n in
      if not (Bitset.mem s v) then begin
        Bitset.add_inplace s v;
        Nbhd.Inc.add inc v
      end
    done;
    ok :=
      !ok
      && Nbhd.Inc.boundary inc = Bitset.cardinal (Nbhd.gamma_minus g s)
      && Nbhd.Inc.unique inc = Bitset.cardinal (Nbhd.gamma1 g s)
      && Nbhd.Inc.cardinal inc = Bitset.cardinal s
  done;
  !ok

(* ---- delta enumerator contract ---- *)

(* The [kept] prefix must be byte-retained from the previous callback, and
   rebuilding each set from the deltas must reproduce exactly the sequence
   the plain iterators emit. *)
let check_delta_rebuild name kmax plain_iter delta_iter =
  let plain = ref [] in
  plain_iter (fun (x : int array) -> plain := Array.to_list x :: !plain);
  let rebuilt = ref [] in
  let prev = Array.make (max 1 kmax) 0 in
  let prev_len = ref 0 in
  delta_iter (fun (x : int array) ~kept ->
      let len = Array.length x in
      check_true (name ^ " kept bounded") (kept >= 0 && kept <= !prev_len && kept <= len);
      for j = 0 to kept - 1 do
        check_int (name ^ " retained slot") prev.(j) x.(j)
      done;
      for j = kept to len - 1 do
        prev.(j) <- x.(j)
      done;
      prev_len := len;
      rebuilt := Array.to_list x :: !rebuilt);
  check_true (name ^ " same sequence") (!plain = !rebuilt)

let test_delta_enumerators_rebuild () =
  List.iter
    (fun (n, k) ->
      check_delta_rebuild
        (Printf.sprintf "of_size n=%d k=%d" n k)
        k
        (Combi.iter_subsets_of_size n k)
        (Combi.iter_subsets_of_size_delta n k);
      check_delta_rebuild
        (Printf.sprintf "le n=%d k=%d" n k)
        k (Combi.iter_subsets_le n k)
        (Combi.iter_subsets_le_delta n k))
    [ (6, 3); (7, 7); (5, 1); (8, 4); (4, 2) ];
  let n = 7 and kmax = 4 in
  for a = 0 to n - 1 do
    check_delta_rebuild
      (Printf.sprintf "le_with_min a=%d" a)
      kmax
      (Combi.iter_subsets_le_with_min n kmax a)
      (Combi.iter_subsets_le_with_min_delta n kmax a);
    check_delta_rebuild
      (Printf.sprintf "of_size_with_min a=%d" a)
      3
      (Combi.iter_subsets_of_size_with_min n 3 a)
      (Combi.iter_subsets_of_size_with_min_delta n 3 a)
  done

(* ---- exact measures vs a from-scratch reference minimiser ---- *)

(* Reference implementation of the pre-engine scoring path: enumerate with
   the plain iterator, rebuild a bitset per set, score with the naive
   operators, lex tiebreak on elements. *)
let reference_min g kmax score =
  let n = Graph.n g in
  let buf = Bitset.create n in
  let best = ref None in
  Combi.iter_subsets_le n kmax (fun idxs ->
      Bitset.clear_inplace buf;
      Array.iter (Bitset.add_inplace buf) idxs;
      let v = score buf in
      let improved =
        match !best with
        | None -> true
        | Some (bv, bw) -> v < bv || (v = bv && compare (Bitset.elements buf) (Bitset.elements bw) < 0)
      in
      if improved then best := Some (v, Bitset.copy buf));
  match !best with Some b -> b | None -> Alcotest.fail "reference_min: no sets"

(* Naive inner wireless maximum: every non-empty S' ⊆ S scored through
   [gamma1_excluding], no Gray code involved. *)
let reference_wireless g s =
  let n = Graph.n g in
  let elts = Bitset.to_array s in
  let k = Array.length elts in
  let best = ref 0 in
  Combi.iter_subsets_le k k (fun idxs ->
      let s' = Bitset.create n in
      Array.iter (fun i -> Bitset.add_inplace s' elts.(i)) idxs;
      let u = Bitset.cardinal (Nbhd.gamma1_excluding g s s') in
      if u > !best then best := u);
  float_of_int !best /. float_of_int k

let family_instances () =
  List.mapi
    (fun i (f : Families.family) -> (f.Families.name, f.Families.make (rng ~salt:(900 + i) ()) 8))
    Families.all

let check_same_witnessed name (expected_v, expected_w) (got : Measure.witnessed) =
  check_true
    (Printf.sprintf "%s value bit-identical" name)
    (expected_v = got.Measure.value);
  Alcotest.check bitset_testable (name ^ " witness") expected_w got.Measure.witness

let test_exact_measures_match_reference () =
  List.iter
    (fun (name, g) ->
      let kmax = Measure.max_set_size g in
      if Graph.n g > 0 && kmax > 0 then begin
        let ref_beta = reference_min g kmax (Nbhd.expansion_of_set g) in
        let ref_beta_u = reference_min g kmax (Nbhd.unique_expansion_of_set g) in
        List.iter
          (fun jobs ->
            check_same_witnessed
              (Printf.sprintf "%s beta jobs=%d" name jobs)
              ref_beta
              (Measure.beta_exact ~jobs g);
            check_same_witnessed
              (Printf.sprintf "%s beta_u jobs=%d" name jobs)
              ref_beta_u
              (Measure.beta_u_exact ~jobs g))
          [ 1; 4 ];
        (* The 3^n reference inner loop is only affordable on the smaller
           instances; the families are built with size hint 8 so most
           qualify. *)
        if Graph.n g <= 10 then begin
          let ref_beta_w = reference_min g kmax (reference_wireless g) in
          List.iter
            (fun jobs ->
              check_same_witnessed
                (Printf.sprintf "%s beta_w jobs=%d" name jobs)
                ref_beta_w
                (Measure.beta_w_exact ~jobs g))
            [ 1; 4 ]
        end
      end)
    (family_instances ())

let suite =
  [
    Alcotest.test_case "Inc matches naive on random walks" `Quick test_inc_matches_naive_random_walk;
    Alcotest.test_case "Inc reset allows arena reuse" `Quick test_inc_reset_reuse;
    Alcotest.test_case "Inc rejects invalid add/remove" `Quick test_inc_rejects_double_ops;
    qcheck ~count:60 "Inc counters match naive on random graphs" prop_inc_counts_random_subset
      (arbitrary_graph ~lo:2 ~hi:12);
    Alcotest.test_case "delta enumerators rebuild plain sequences" `Quick
      test_delta_enumerators_rebuild;
    Alcotest.test_case "exact measures match from-scratch reference" `Quick
      test_exact_measures_match_reference;
  ]
