module Bitset = Wx_util.Bitset
open Common

let test_empty () =
  let s = Bitset.create 100 in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_true "is_empty" (Bitset.is_empty s);
  for i = 0 to 99 do
    check_true "not mem" (not (Bitset.mem s i))
  done

let test_full () =
  let s = Bitset.full 100 in
  check_int "cardinal" 100 (Bitset.cardinal s);
  for i = 0 to 99 do
    check_true "mem" (Bitset.mem s i)
  done

let test_full_boundary_sizes () =
  (* Around the word size, phantom-bit bugs show up. *)
  List.iter
    (fun n ->
      let s = Bitset.full n in
      check_int (Printf.sprintf "full %d" n) n (Bitset.cardinal s);
      check_int "complement empty" 0 (Bitset.cardinal (Bitset.complement s)))
    [ 1; 62; 63; 64; 65; 126; 127; 128 ]

let test_add_remove () =
  let s = Bitset.create 50 in
  Bitset.add_inplace s 7;
  Bitset.add_inplace s 49;
  Bitset.add_inplace s 0;
  check_int "card" 3 (Bitset.cardinal s);
  check_true "mem 7" (Bitset.mem s 7);
  Bitset.remove_inplace s 7;
  check_true "removed" (not (Bitset.mem s 7));
  check_int "card after" 2 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add_inplace s 3;
  Bitset.add_inplace s 3;
  check_int "card" 1 (Bitset.cardinal s)

let test_persistent_ops () =
  let s = Bitset.of_list 20 [ 1; 5; 9 ] in
  let t = Bitset.add s 10 in
  check_true "s unchanged" (not (Bitset.mem s 10));
  check_true "t has it" (Bitset.mem t 10);
  let u = Bitset.remove t 1 in
  check_true "t unchanged" (Bitset.mem t 1);
  check_true "u lost it" (not (Bitset.mem u 1))

let test_out_of_range () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "mem -1" (Invalid_argument "Bitset: element out of range") (fun () ->
      ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "add 10" (Invalid_argument "Bitset: element out of range") (fun () ->
      Bitset.add_inplace s 10)

let test_set_algebra () =
  let a = Bitset.of_list 200 [ 1; 2; 3; 100; 150 ] in
  let b = Bitset.of_list 200 [ 2; 3; 4; 150; 199 ] in
  check_true "union"
    (Bitset.elements (Bitset.union a b) = [ 1; 2; 3; 4; 100; 150; 199 ]);
  check_true "inter" (Bitset.elements (Bitset.inter a b) = [ 2; 3; 150 ]);
  check_true "diff" (Bitset.elements (Bitset.diff a b) = [ 1; 100 ])

let test_subset_disjoint () =
  let a = Bitset.of_list 64 [ 1; 5 ] in
  let b = Bitset.of_list 64 [ 1; 5; 9 ] in
  let c = Bitset.of_list 64 [ 2; 8 ] in
  check_true "a ⊆ b" (Bitset.subset a b);
  check_true "b ⊄ a" (not (Bitset.subset b a));
  check_true "a ∥ c" (Bitset.disjoint a c);
  check_true "a ∦ b" (not (Bitset.disjoint a b))

let test_iter_order () =
  let s = Bitset.of_list 300 [ 250; 3; 77; 0; 299 ] in
  check_true "ascending" (Bitset.elements s = [ 0; 3; 77; 250; 299 ])

let test_fold_exists_forall () =
  let s = Bitset.of_list 40 [ 2; 4; 6 ] in
  check_int "fold sum" 12 (Bitset.fold ( + ) s 0);
  check_true "exists" (Bitset.exists (fun x -> x = 4) s);
  check_true "not exists" (not (Bitset.exists (fun x -> x = 5) s));
  check_true "for_all even" (Bitset.for_all (fun x -> x mod 2 = 0) s)

let test_choose () =
  let s = Bitset.of_list 10 [ 7; 3 ] in
  check_int "choose min" 3 (Bitset.choose s);
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Bitset.choose (Bitset.create 10)))

let test_complement () =
  let s = Bitset.of_list 65 [ 0; 64 ] in
  let c = Bitset.complement s in
  check_int "card" 63 (Bitset.cardinal c);
  check_true "0 out" (not (Bitset.mem c 0));
  check_true "1 in" (Bitset.mem c 1)

let test_iter_subsets_count () =
  let s = Bitset.of_list 20 [ 3; 7; 11; 15 ] in
  let count = ref 0 in
  let seen = Hashtbl.create 16 in
  Bitset.iter_subsets s (fun sub ->
      incr count;
      check_true "is subset" (Bitset.subset sub s);
      let key = Bitset.to_string sub in
      check_true "distinct" (not (Hashtbl.mem seen key));
      Hashtbl.add seen key ());
  check_int "2^4 subsets" 16 !count

let test_iter_subsets_too_large () =
  (* The Gray-code walk over a large set would overflow the native int;
     the unified guard refuses it up front with the shared Too_large
     constructor, catchable from any layer under either name. *)
  let s = Bitset.full 70 in
  (try
     Bitset.iter_subsets s (fun _ -> Alcotest.fail "callback must not run");
     Alcotest.fail "expected Too_large"
   with Wx_util.Guard.Too_large msg ->
     check_true "names the caller"
       (String.length msg > 0 && String.sub msg 0 19 = "Bitset.iter_subsets");
     check_true "explains the ceiling"
       (let sub = "native-int ceiling" in
        let n = String.length msg and m = String.length sub in
        let rec find i = i + m <= n && (String.sub msg i m = sub || find (i + 1)) in
        find 0));
  (* Same exception through the Measure rebinding. *)
  (try
     Bitset.iter_subsets s ignore;
     Alcotest.fail "expected Too_large"
   with Wx_expansion.Measure.Too_large _ -> ())

let test_random_subset () =
  let r = rng ~salt:20 () in
  let s = Bitset.full 200 in
  let sub = Bitset.random_subset r s 0.5 in
  check_true "subset" (Bitset.subset sub s);
  let c = Bitset.cardinal sub in
  check_true "near half" (c > 60 && c < 140)

let test_random_of_universe () =
  let r = rng ~salt:21 () in
  for _ = 1 to 100 do
    let s = Bitset.random_of_universe r 50 7 in
    check_int "card" 7 (Bitset.cardinal s)
  done

let test_to_array_of_array () =
  let a = [| 5; 1; 9 |] in
  let s = Bitset.of_array 12 a in
  check_true "roundtrip sorted" (Bitset.to_array s = [| 1; 5; 9 |])

let test_pp () =
  let s = Bitset.of_list 10 [ 1; 3 ] in
  Alcotest.(check string) "pp" "{1, 3}" (Bitset.to_string s)

(* qcheck: bitset algebra agrees with the Slow reference implementation. *)
let arbitrary_pair =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 150 in
      let* xs = list_size (int_range 0 40) (int_range 0 (n - 1)) in
      let* ys = list_size (int_range 0 40) (int_range 0 (n - 1)) in
      return (n, xs, ys))

let prop_matches_slow op slow_op (n, xs, ys) =
  let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
  let sa = Bitset.Slow.of_list n xs and sb = Bitset.Slow.of_list n ys in
  Bitset.elements (op a b) = Bitset.Slow.elements (slow_op sa sb)

let qcheck_tests =
  [
    qcheck "union matches slow" (prop_matches_slow Bitset.union Bitset.Slow.union) arbitrary_pair;
    qcheck "inter matches slow" (prop_matches_slow Bitset.inter Bitset.Slow.inter) arbitrary_pair;
    qcheck "diff matches slow" (prop_matches_slow Bitset.diff Bitset.Slow.diff) arbitrary_pair;
    qcheck "cardinal = |elements|"
      (fun (n, xs, _) ->
        let s = Bitset.of_list n xs in
        Bitset.cardinal s = List.length (Bitset.elements s))
      arbitrary_pair;
    qcheck "union_cardinal = |union|"
      (fun (n, xs, ys) ->
        let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
        Bitset.union_cardinal a b = Bitset.cardinal (Bitset.union a b))
      arbitrary_pair;
    qcheck "inter_cardinal = |inter|"
      (fun (n, xs, ys) ->
        let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
        Bitset.inter_cardinal a b = Bitset.cardinal (Bitset.inter a b))
      arbitrary_pair;
    qcheck "diff_cardinal = |diff| (both orders)"
      (fun (n, xs, ys) ->
        let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
        Bitset.diff_cardinal a b = Bitset.cardinal (Bitset.diff a b)
        && Bitset.diff_cardinal b a = Bitset.cardinal (Bitset.diff b a))
      arbitrary_pair;
    qcheck "de morgan"
      (fun (n, xs, ys) ->
        let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
        Bitset.equal
          (Bitset.complement (Bitset.union a b))
          (Bitset.inter (Bitset.complement a) (Bitset.complement b)))
      arbitrary_pair;
  ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "full" `Quick test_full;
    Alcotest.test_case "full boundary sizes" `Quick test_full_boundary_sizes;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
    Alcotest.test_case "persistent ops" `Quick test_persistent_ops;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "subset/disjoint" `Quick test_subset_disjoint;
    Alcotest.test_case "iter order" `Quick test_iter_order;
    Alcotest.test_case "fold/exists/forall" `Quick test_fold_exists_forall;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "iter_subsets" `Quick test_iter_subsets_count;
    Alcotest.test_case "iter_subsets too large" `Quick test_iter_subsets_too_large;
    Alcotest.test_case "random subset" `Quick test_random_subset;
    Alcotest.test_case "random of universe" `Quick test_random_of_universe;
    Alcotest.test_case "array roundtrip" `Quick test_to_array_of_array;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
  @ qcheck_tests
