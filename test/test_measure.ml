module Measure = Wx_expansion.Measure
module Bip_measure = Wx_expansion.Bip_measure
module Nbhd = Wx_expansion.Nbhd
module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
open Common

let test_max_set_size () =
  check_int "half of 10" 5 (Measure.max_set_size (Gen.cycle 10));
  check_int "alpha 0.3" 3 (Measure.max_set_size ~alpha:0.3 (Gen.cycle 10))

let test_beta_exact_cycle () =
  (* Cycle 10, α = 1/2: the worst set is an arc of 5 with 2 外 neighbors. *)
  let w = Measure.beta_exact (Gen.cycle 10) in
  check_float "beta" (2.0 /. 5.0) w.Measure.value;
  check_int "witness size" 5 (Bitset.cardinal w.Measure.witness);
  check_float "witness consistent" w.Measure.value
    (Nbhd.expansion_of_set (Gen.cycle 10) w.Measure.witness)

let test_beta_exact_complete () =
  (* K8, α = 1/2: any set of size k ≤ 4 has 8−k external neighbors; min at
     k = 4: 4/4 = 1. *)
  let w = Measure.beta_exact (Gen.complete 8) in
  check_float "beta" 1.0 w.Measure.value

let test_beta_exact_star () =
  (* Star n=9 (center 0): worst set = 4 leaves → only the center outside: 1/4. *)
  let w = Measure.beta_exact (Gen.star 9) in
  check_float "beta" 0.25 w.Measure.value

let test_beta_u_exact_cycle () =
  (* Even cycle: the alternating independent set {0,2,4,6,8} double-covers
     every outside vertex, so βu = 0 — while the wireless expansion stays
     positive (pick every fourth vertex). A textbook β/βu separation. *)
  let bu = Measure.beta_u_exact (Gen.cycle 10) in
  check_float "βu = 0 on even cycle" 0.0 bu.Measure.value;
  let bw = Measure.beta_w_exact (Gen.cycle 10) in
  check_true "βw > 0 on even cycle" (bw.Measure.value > 0.0)

let test_beta_u_complete_graph_is_low () =
  (* K8: a set of 2 has zero unique neighbors? Each outside vertex is
     adjacent to both → Γ¹ = ∅. *)
  let bu = Measure.beta_u_exact (Gen.complete 8) in
  check_float "βu = 0" 0.0 bu.Measure.value

let test_beta_w_vs_others_cplus () =
  (* The motivating separation: on C⁺, βu is 0 (witness {x, y, s0}) but βw
     stays positive. *)
  let g = Wx_constructions.Cplus.create 7 in
  let bu = Measure.beta_u_exact g in
  let bw = Measure.beta_w_exact g in
  check_float "βu = 0" 0.0 bu.Measure.value;
  check_true "βw > 0" (bw.Measure.value > 0.0)

let test_wireless_of_set_exact () =
  (* C+ bad set {x, y, s0}: transmitting {x} alone uniquely covers the whole
     remaining clique (c − 2 vertices) minus... x is adjacent to all clique
     vertices and s0. S = {0, 1, s0}; S' = {0} covers clique \ {0,1}
     uniquely (each has exactly one neighbor in S'). *)
  let g = Wx_constructions.Cplus.create 8 in
  let s = Wx_constructions.Cplus.bad_set g in
  let w = Measure.wireless_of_set_exact g s in
  check_float "singleton wins" (6.0 /. 3.0) w.Measure.value

let test_beta_w_exact_ordering () =
  List.iter
    (fun (name, g) ->
      let b = (Measure.beta_exact g).Measure.value in
      let bw = (Measure.beta_w_exact g).Measure.value in
      let bu = (Measure.beta_u_exact g).Measure.value in
      check_true (name ^ ": β >= βw") (b >= bw -. 1e-9);
      check_true (name ^ ": βw >= βu") (bw >= bu -. 1e-9))
    [
      ("cycle-8", Gen.cycle 8);
      ("path-8", Gen.path 8);
      ("grid-3x3", Gen.grid 3 3);
      ("complete-7", Gen.complete 7);
      ("star-8", Gen.star 8);
      ("hypercube-3", Gen.hypercube 3);
    ]

let test_sampled_upper_bounds_exact () =
  let r = rng ~salt:50 () in
  List.iter
    (fun g ->
      let exact = (Measure.beta_exact g).Measure.value in
      let sampled = (Measure.beta_sampled r ~samples:200 g).Measure.value in
      check_true "sampled >= exact" (sampled >= exact -. 1e-9))
    [ Gen.cycle 10; Gen.grid 3 4; Gen.hypercube 3 ]

let test_beta_w_sampled_upper_bounds_exact () =
  let r = rng ~salt:51 () in
  let g = Gen.cycle 9 in
  let exact = (Measure.beta_w_exact g).Measure.value in
  let sampled = (Measure.beta_w_sampled r ~samples:300 g).Measure.value in
  check_true "sampled >= exact" (sampled >= exact -. 1e-9)

let test_work_limit () =
  match Measure.beta_exact ~work_limit:100 (Gen.cycle 12) with
  | _ -> Alcotest.fail "expected Too_large"
  | exception Measure.Too_large _ -> ()

(* Regressions for the work-guard overflow bugs: each of these used to
   either escape as a bare [Combi.Overflow] or, with [1 lsl k] overflowing
   at k >= 62, start an enumeration that would never finish. All must
   reject promptly with the documented exception. *)
let test_work_guard_overflow_is_too_large () =
  let expect_too_large name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Too_large" name
    | exception Measure.Too_large _ -> ()
    | exception e -> Alcotest.failf "%s: expected Too_large, got %s" name (Printexc.to_string e)
  in
  (* Candidate-set count overflows the native int inside subsets_count_le. *)
  expect_too_large "beta_exact n=200" (fun () -> Measure.beta_exact (Gen.cycle 200));
  expect_too_large "profile_beta n=200" (fun () -> Measure.profile_beta (Gen.cycle 200));
  (* Wireless work estimator: binomial overflow folds into infinite work. *)
  expect_too_large "beta_w_exact n=200" (fun () -> Measure.beta_w_exact (Gen.cycle 200));
  expect_too_large "profile_beta_w n=200" (fun () -> Measure.profile_beta_w (Gen.cycle 200));
  (* kmax >= 62: the per-size factor 2^k no longer fits an int; the ldexp
     estimator must still reject instead of silently passing the guard. *)
  expect_too_large "beta_w_exact kmax=63" (fun () ->
      Measure.beta_w_exact ~alpha:1.0 (Gen.cycle 63));
  expect_too_large "profile_beta_w kmax=63" (fun () ->
      Measure.profile_beta_w ~alpha:1.0 (Gen.cycle 63))

(* The Gray-code guard derives its admission test and its reported bound
   from one number, min(work_limit, 2^(int_size - 2)): a tiny limit rejects
   with that limit in the message, and a huge |S| is rejected even at
   [work_limit = max_int] — where the old code's separate [1 lsl k] test
   wrapped around — with the native-int ceiling called out. *)
let test_gray_guard_single_bound () =
  let contains msg sub =
    let n = String.length msg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
    go 0
  in
  let g = Gen.cycle 126 in
  let big = Bitset.of_array 126 (Array.init 63 Fun.id) in
  (match Measure.wireless_of_set_exact ~work_limit:max_int g big with
  | _ -> Alcotest.fail "expected Too_large for |S| = 63 at work_limit = max_int"
  | exception Measure.Too_large msg ->
      check_true "ceiling named in message" (contains msg "native-int ceiling"));
  let small = Bitset.of_array 126 (Array.init 20 Fun.id) in
  (match Measure.wireless_of_set_exact ~work_limit:1024 g small with
  | _ -> Alcotest.fail "expected Too_large for 2^20 steps at limit 1024"
  | exception Measure.Too_large msg -> check_true "limit in message" (contains msg "1024"));
  (* 2^10 steps fit the 1024-step limit exactly: admitted. *)
  let s10 = Bitset.of_array 126 (Array.init 10 Fun.id) in
  let w = Measure.wireless_of_set_exact ~work_limit:1024 g s10 in
  check_true "at-limit set scored" (w.Measure.value > 0.0)

let test_profile_beta () =
  let profile = Measure.profile_beta (Gen.cycle 10) in
  check_int "5 sizes" 5 (List.length profile);
  (* Size-k arcs are worst: expansion 2/k, decreasing in k. *)
  List.iter (fun (k, v) -> check_float "arc" (2.0 /. float_of_int k) v) profile

(* --- bipartite measures --- *)

let test_bip_exact_max_unique_gbad () =
  let gb = Wx_constructions.Gbad.create ~s:6 ~delta:4 ~beta:3 in
  let t = Wx_constructions.Gbad.bip gb in
  let m, witness = Bip_measure.exact_max_unique t in
  check_int "witness consistent" m (Nbhd.Bip.unique_count t witness);
  (* Wireless lb from the remark: max{2β−∆, ∆/2} per S-vertex = max{2,2} = 2;
     6 vertices → at least 12. *)
  check_true "above remark lb" (m >= 12)

let test_bip_ordinary_expansion_exact () =
  (* Complete bipartite 3×4 as instance: every nonempty S' covers all 4. *)
  let t =
    Bipartite.of_edges ~s:3 ~n:4
      (List.concat_map (fun u -> List.init 4 (fun w -> (u, w))) [ 0; 1; 2 ])
  in
  let v, witness = Bip_measure.ordinary_expansion_min_exact t in
  check_float "4/3" (4.0 /. 3.0) v;
  check_int "witness is full side" 3 (Bitset.cardinal witness)

let test_bip_sampled_vs_exact () =
  let r = rng ~salt:52 () in
  let t = Gen.random_bipartite_sdeg r ~s:10 ~n:15 ~d:3 in
  let exact, _ = Bip_measure.ordinary_expansion_min_exact t in
  let sampled, _ = Bip_measure.ordinary_expansion_min_sampled r ~samples:500 t in
  check_true "sampled >= exact" (sampled >= exact -. 1e-9)

let test_bip_sampled_max_lower_bounds_exact () =
  let r = rng ~salt:53 () in
  let t = Gen.random_bipartite_sdeg r ~s:10 ~n:15 ~d:3 in
  let exact, _ = Bip_measure.exact_max_unique t in
  let sampled, _ = Bip_measure.sampled_max_unique r ~samples:500 t in
  check_true "sampled <= exact" (sampled <= exact)

let qcheck_tests =
  [
    qcheck ~count:25 "Obs 2.1 on random graphs"
      (fun g ->
        if Graph.n g > 10 || Graph.n g < 2 then true
        else begin
          let b = (Measure.beta_exact g).Measure.value in
          let bw = (Measure.beta_w_exact g).Measure.value in
          let bu = (Measure.beta_u_exact g).Measure.value in
          b >= bw -. 1e-9 && bw >= bu -. 1e-9
        end)
      (arbitrary_graph ~lo:3 ~hi:10);
    qcheck ~count:25 "wireless of set >= unique of set"
      (fun g ->
        let n = Graph.n g in
        if n < 4 then true
        else begin
          let r = Wx_util.Rng.create 3 in
          let s = Bitset.random_of_universe r n (max 1 (n / 3)) in
          let uniq = Nbhd.unique_expansion_of_set g s in
          let wl = (Measure.wireless_of_set_exact g s).Measure.value in
          wl >= uniq -. 1e-9
        end)
      (arbitrary_graph ~lo:4 ~hi:14);
  ]

let suite =
  [
    Alcotest.test_case "max_set_size" `Quick test_max_set_size;
    Alcotest.test_case "beta exact cycle" `Quick test_beta_exact_cycle;
    Alcotest.test_case "beta exact complete" `Quick test_beta_exact_complete;
    Alcotest.test_case "beta exact star" `Quick test_beta_exact_star;
    Alcotest.test_case "beta_u cycle" `Quick test_beta_u_exact_cycle;
    Alcotest.test_case "beta_u complete low" `Quick test_beta_u_complete_graph_is_low;
    Alcotest.test_case "C+ separation" `Quick test_beta_w_vs_others_cplus;
    Alcotest.test_case "wireless of set exact" `Quick test_wireless_of_set_exact;
    Alcotest.test_case "ordering on zoo" `Quick test_beta_w_exact_ordering;
    Alcotest.test_case "sampled beta bounds exact" `Quick test_sampled_upper_bounds_exact;
    Alcotest.test_case "sampled beta_w bounds exact" `Quick test_beta_w_sampled_upper_bounds_exact;
    Alcotest.test_case "work limit" `Quick test_work_limit;
    Alcotest.test_case "work guard overflow is Too_large" `Quick
      test_work_guard_overflow_is_too_large;
    Alcotest.test_case "gray guard derives one bound" `Quick test_gray_guard_single_bound;
    Alcotest.test_case "profile beta" `Quick test_profile_beta;
    Alcotest.test_case "bip max unique gbad" `Quick test_bip_exact_max_unique_gbad;
    Alcotest.test_case "bip ordinary exact" `Quick test_bip_ordinary_expansion_exact;
    Alcotest.test_case "bip sampled vs exact" `Quick test_bip_sampled_vs_exact;
    Alcotest.test_case "bip sampled max lb" `Quick test_bip_sampled_max_lower_bounds_exact;
  ]
  @ qcheck_tests
