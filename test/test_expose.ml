(* The live ops surface: Prometheus text well-formedness, JSON/text
   agreement, the HTTP round trip on an ephemeral port, scraping while the
   pool is hot (the concurrent-snapshot contract), scrape-delta rates, and
   the SIGUSR1 one-shot dump. *)

module Expose = Wx_obs.Expose
module Metrics = Wx_obs.Metrics
module Json = Wx_obs.Json
module Sink = Wx_obs.Sink
module Progress = Wx_obs.Progress
module Pool = Wx_par.Pool
open Common

let with_metrics f =
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.disable ())
    f

(* ---- Prometheus text grammar ----

   One line is either a comment/TYPE line, blank, or
   [name{labels} value]: name in [a-zA-Z_:][a-zA-Z0-9_:]*, optional
   {..} label block, then one float literal (NaN and signed Inf allowed).
   This is the same shape the CI smoke step asserts with awk. *)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = ':'

let valid_name s =
  String.length s > 0
  && (not (s.[0] >= '0' && s.[0] <= '9'))
  && String.for_all is_name_char s

let valid_value s =
  s = "NaN" || s = "+Inf" || s = "-Inf" || Option.is_some (float_of_string_opt s)

let split_sample line =
  (* name{...} value | name value *)
  match String.index_opt line ' ' with
  | None -> None
  | Some _ -> (
      let name_end =
        match String.index_opt line '{' with
        | Some i -> i
        | None -> String.index line ' '
      in
      let name = String.sub line 0 name_end in
      match String.rindex_opt line ' ' with
      | None -> None
      | Some sp ->
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          (* A label block, if present, must close right before the value. *)
          let labels_ok =
            match String.index_opt line '{' with
            | None -> sp = name_end
            | Some i -> i < sp && line.[sp - 1] = '}'
          in
          if labels_ok then Some (name, value) else None)

let check_prometheus_grammar page =
  List.iter
    (fun line ->
      if line <> "" && not (String.length line >= 1 && line.[0] = '#') then
        match split_sample line with
        | None -> Alcotest.failf "unparseable exposition line: %S" line
        | Some (name, value) ->
            if not (valid_name name) then Alcotest.failf "bad metric name in %S" line;
            if not (valid_value value) then Alcotest.failf "bad sample value in %S" line)
    (String.split_on_char '\n' page)

let test_prometheus_well_formed () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.expose.count" in
      let g = Metrics.gauge "test.expose.gap" in
      let h = Metrics.histogram "test.expose.sizes" in
      Metrics.add c 7;
      Metrics.set g Float.nan;
      List.iter (Metrics.observe h) [ 1.0; 2.0; 400.0 ];
      let page = Expose.prometheus_page ~rates:[ ("sets_scored", 123.5) ] ~uptime_s:1.5 () in
      check_prometheus_grammar page;
      let lines = String.split_on_char '\n' page in
      let has needle = List.exists (fun l -> l = needle) lines in
      check_true "counter sample" (has "wx_test_expose_count 7");
      check_true "NaN gauge renders as NaN literal" (has "wx_test_expose_gap NaN");
      check_true "summary count" (has "wx_test_expose_sizes_count 3");
      check_true "rate sample" (has "wx_work_units_per_second{kind=\"sets_scored\"} 123.5");
      check_true "uptime gauge" (has "wx_uptime_seconds 1.5");
      check_true "build info labeled"
        (List.exists
           (fun l ->
             String.length l > 14
             && String.sub l 0 14 = "wx_build_info{"
             && String.sub l (String.length l - 2) 2 = " 1")
           lines);
      (* Every metric family is declared exactly once. *)
      let types =
        List.filter_map
          (fun l ->
            if String.length l > 7 && String.sub l 0 7 = "# TYPE " then Some l else None)
          lines
      in
      check_int "no duplicate TYPE declarations"
        (List.length types)
        (List.length (List.sort_uniq compare types)))

(* The text and JSON surfaces render the same registry: every counter and
   gauge in the snapshot must appear in the text page with the same value
   (modulo name sanitization). *)
let test_json_text_agreement () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.expose.agree" in
      let g = Metrics.gauge "test.expose.level" in
      Metrics.add c 42;
      Metrics.set g 2.5;
      let text = Expose.prometheus_page ~uptime_s:0.5 () in
      let json = Json.of_string (Expose.json_page ~uptime_s:0.5 ()) in
      check_true "schema"
        (Option.bind (Json.member "schema" json) Json.to_string_opt = Some "wx-expose/1");
      let metrics = Option.get (Json.member "metrics" json) in
      let lines = String.split_on_char '\n' text in
      let sanitize name =
        let s =
          String.map (fun ch -> if is_name_char ch && ch <> ':' then ch else '_') name
        in
        if String.length s >= 3 && String.sub s 0 3 = "wx_" then s else "wx_" ^ s
      in
      let text_value name =
        List.find_map
          (fun l ->
            match split_sample l with
            | Some (n, v) when n = name -> Some v
            | _ -> None)
          lines
      in
      let check_section section expected_of_json =
        match Json.member section metrics with
        | Some (Json.Obj kvs) ->
            List.iter
              (fun (k, v) ->
                match expected_of_json v with
                | None -> ()
                | Some expected -> (
                    match text_value (sanitize k) with
                    | None -> Alcotest.failf "%s %s missing from text page" section k
                    | Some got ->
                        check_float
                          (Printf.sprintf "%s %s agrees" section k)
                          expected
                          (float_of_string got)))
              kvs
        | _ -> Alcotest.failf "snapshot lacks %s" section
      in
      check_section "counters" (fun v -> Json.to_float_opt v);
      check_section "gauges" (fun v ->
          (* NaN gauges agree by definition (both render a missing-value
             spelling); synthesized families are emitted with labels. *)
          match Json.to_float_opt v with
          | Some f when Float.is_finite f -> Some f
          | _ -> None))

let test_scrape_rates () =
  let t0 = 0 and t1 = 2_000_000_000 in
  check_true "first scrape has no rates"
    (Expose.scrape_rates ~prev:None ~now_ns:t1 ~work:[ ("sets", 100) ] = []);
  let rates =
    Expose.scrape_rates
      ~prev:(Some (t0, [ ("sets", 100); ("gray", 40) ]))
      ~now_ns:t1
      ~work:[ ("sets", 300); ("gray", 10); ("fresh", 50) ]
  in
  check_float "positive delta over 2s" 100.0 (List.assoc "sets" rates);
  check_float "negative delta (reset) clamps to zero" 0.0 (List.assoc "gray" rates);
  check_float "kind absent from prev counts from zero" 25.0 (List.assoc "fresh" rates);
  check_true "empty interval yields nothing"
    (Expose.scrape_rates ~prev:(Some (t1, [])) ~now_ns:t1 ~work:[ ("sets", 1) ] = [])

let test_http_roundtrip () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.expose.http" in
      Metrics.add c 3;
      match Expose.start ~port:0 () with
      | Error msg -> Alcotest.failf "start: %s" msg
      | Ok srv ->
          Fun.protect ~finally:(fun () -> Expose.stop srv)
            (fun () ->
              let port = Expose.port srv in
              check_true "ephemeral port assigned" (port > 0);
              (match Expose.http_get ~host:"127.0.0.1" ~port ~path:"/metrics" with
              | Error msg -> Alcotest.failf "GET /metrics: %s" msg
              | Ok body ->
                  check_prometheus_grammar body;
                  check_true "instrument visible over HTTP"
                    (List.mem "wx_test_expose_http 3" (String.split_on_char '\n' body)));
              (match Expose.http_get ~host:"127.0.0.1" ~port ~path:"/json" with
              | Error msg -> Alcotest.failf "GET /json: %s" msg
              | Ok body -> (
                  match Json.of_string_opt (String.trim body) with
                  | None -> Alcotest.failf "malformed JSON body: %s" body
                  | Some j ->
                      check_true "schema over HTTP"
                        (Option.bind (Json.member "schema" j) Json.to_string_opt
                        = Some "wx-expose/1")));
              (* The scrape counter is monotone across scrapes. *)
              let scrapes () =
                match Expose.http_get ~host:"127.0.0.1" ~port ~path:"/json" with
                | Error msg -> Alcotest.failf "GET /json: %s" msg
                | Ok body ->
                    Option.get
                      (Json.to_int_opt
                         (Option.get
                            (Json.member "expose.scrapes"
                               (Option.get
                                  (Json.member "counters"
                                     (Option.get
                                        (Json.member "metrics"
                                           (Json.of_string (String.trim body)))))))))
              in
              let s1 = scrapes () in
              let s2 = scrapes () in
              check_true "scrape counter monotone" (s2 > s1);
              check_true "unknown path is a clean 404"
                (match Expose.http_get ~host:"127.0.0.1" ~port ~path:"/nope" with
                | Error _ -> true
                | Ok _ -> false));
          (* Idempotent stop: the Fun.protect above already stopped it. *)
          Expose.stop srv;
          check_true "connection refused after stop"
            (match
               Expose.http_get ~host:"127.0.0.1" ~port:(Expose.port srv) ~path:"/metrics"
             with
            | Error _ -> true
            | Ok _ -> false))

(* Scrapes racing live pool workers: a dedicated domain hammers the
   renderers while a 4-job parallel_reduce observes histograms. Every page
   must stay well-formed (the hardened Metrics.merged contract) and the
   reduction's value must be exactly the sequential one — exposition never
   perturbs results. *)
let test_concurrent_scrape_during_pool_run () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.expose.hot" in
      let stop = Atomic.make false in
      let pages = Atomic.make 0 in
      let scraper =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let page = Expose.prometheus_page ~uptime_s:0.1 () in
              check_prometheus_grammar page;
              ignore (Json.of_string (Expose.json_page ~uptime_s:0.1 ()));
              Atomic.incr pages
            done)
      in
      let n = 20_000 in
      let got =
        Pool.parallel_reduce ~jobs:4 ~chunk:64 ~n ~init:0
          ~map:(fun i ->
            Metrics.observe h (float_of_int ((i mod 11) + 1));
            i)
          ~combine:( + ) ()
      in
      Atomic.set stop true;
      Domain.join scraper;
      check_int "reduction unperturbed by scraping" (n * (n - 1) / 2) got;
      check_true "scraper made progress" (Atomic.get pages > 0);
      (* Quiescent now: the merged histogram holds every observation. *)
      let page = Expose.prometheus_page ~uptime_s:0.2 () in
      check_true "final count exact"
        (List.mem
           (Printf.sprintf "wx_test_expose_hot_count %d" n)
           (String.split_on_char '\n' page)))

(* Pool runs under an enabled registry publish live utilization gauges. *)
let test_pool_util_gauges () =
  with_metrics (fun () ->
      Pool.reset_util ();
      ignore
        (Pool.parallel_reduce ~jobs:2 ~chunk:32 ~n:4096 ~init:0 ~map:Fun.id ~combine:( + ) ());
      let gauges =
        match Json.member "gauges" (Metrics.snapshot ()) with
        | Some (Json.Obj kvs) -> kvs
        | _ -> []
      in
      check_true "cumulative busy gauge" (List.mem_assoc "pool.util.busy_pct" gauges);
      check_true "slot 0 gauge" (List.mem_assoc "pool.util.slot_busy_pct.0" gauges);
      check_true "slot 1 gauge" (List.mem_assoc "pool.util.slot_busy_pct.1" gauges))

(* The heartbeat publishes its state as gauges on the printing path, and
   the ETA guard yields NaN — never inf — while the rate is zero. *)
let test_progress_gauges () =
  with_metrics (fun () ->
      Progress.enable ();
      Fun.protect ~finally:Progress.disable
        (fun () ->
          let t = Progress.start ~units:"sets" ~label:"test" ~total:1000 () in
          (* Cross the 1s print interval so the elected tick publishes. *)
          Unix.sleepf 1.05;
          Progress.tick t 0;
          let g name =
            Option.bind
              (Json.member "gauges" (Metrics.snapshot ()))
              (Json.member name)
            |> Fun.flip Option.bind Json.to_float_opt
          in
          (match g "progress.eta_s" with
          | Some eta -> check_true "zero-rate ETA is NaN, not inf" (Float.is_nan eta)
          | None -> Alcotest.fail "progress.eta_s gauge missing");
          (match g "progress.units_per_s" with
          | Some r -> check_true "zero-done rate is NaN" (Float.is_nan r)
          | None -> Alcotest.fail "progress.units_per_s gauge missing");
          Unix.sleepf 1.05;
          Progress.tick t 400;
          (match g "progress.coverage_pct" with
          | Some pct -> check_float "coverage" 40.0 pct
          | None -> Alcotest.fail "progress.coverage_pct gauge missing");
          (match g "progress.eta_s" with
          | Some eta -> check_true "positive rate gives a finite ETA" (Float.is_finite eta)
          | None -> Alcotest.fail "progress.eta_s gauge missing");
          Progress.finish t))

let test_sigusr1_dump () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.expose.sig" in
      Metrics.add c 5;
      Expose.install_sigusr1_dump ();
      let path = Filename.temp_file "wx_expose_sig" ".ndjson" in
      Fun.protect ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          Sink.install (Sink.make oc);
          Fun.protect
            ~finally:(fun () ->
              Sink.uninstall ();
              close_out oc)
            (fun () ->
              Unix.kill (Unix.getpid ()) Sys.sigusr1;
              (* Signal handlers run at the next safepoint; allocate a
                 little to reach one, then give the sink a beat. *)
              ignore (Sys.opaque_identity (Array.make 64 0));
              Unix.sleepf 0.05);
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let dump =
            List.find_map
              (fun l ->
                match Json.of_string_opt l with
                | Some j
                  when Option.bind (Json.member "event" j) Json.to_string_opt
                       = Some "metrics.sigusr1" ->
                    Some j
                | _ -> None)
              !lines
          in
          match dump with
          | None -> Alcotest.fail "no metrics.sigusr1 event reached the sink"
          | Some j ->
              let counters =
                Option.bind (Json.member "snapshot" j) (Json.member "counters")
              in
              check_true "snapshot captures the registry"
                (Option.bind counters (Json.member "test.expose.sig")
                 |> Option.map Json.to_int_opt
                = Some (Some 5))))

let suite =
  [
    Alcotest.test_case "prometheus page is well-formed" `Quick test_prometheus_well_formed;
    Alcotest.test_case "json and text surfaces agree" `Quick test_json_text_agreement;
    Alcotest.test_case "scrape-delta rates" `Quick test_scrape_rates;
    Alcotest.test_case "http round trip on an ephemeral port" `Quick test_http_roundtrip;
    Alcotest.test_case "scraping races a hot pool safely" `Slow
      test_concurrent_scrape_during_pool_run;
    Alcotest.test_case "pool runs publish live utilization gauges" `Quick
      test_pool_util_gauges;
    Alcotest.test_case "progress gauges and the NaN ETA guard" `Slow test_progress_gauges;
    Alcotest.test_case "SIGUSR1 dumps a one-shot snapshot" `Quick test_sigusr1_dump;
  ]
